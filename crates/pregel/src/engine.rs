//! The BSP engine: graph loading, the superstep loop, and halting.

use crate::aggregate::{AggValue, AggregatorSpec};
use crate::metrics::{RunTotals, SuperstepMetrics};
use crate::program::{MasterContext, Program};
use crate::types::{Mailbag, WorkerId};
use crate::worker::Worker;
use crate::Placement;
use spinner_graph::{DirectedGraph, UndirectedGraph, VertexId};
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of OS threads executing the logical workers. Defaults to the
    /// machine's available parallelism, capped by the worker count.
    pub num_threads: usize,
    /// Hard cap on supersteps (safety net; programs normally halt earlier).
    pub max_supersteps: u64,
    /// Seed for all vertex-level randomness.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            num_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            max_supersteps: 10_000,
            seed: 1,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// Every vertex voted to halt and no messages were in flight.
    AllHalted,
    /// The master compute requested the halt.
    Master,
    /// The configured superstep cap was reached.
    MaxSupersteps,
}

/// Result of a run: superstep count, halt cause, and per-superstep metrics.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Supersteps executed.
    pub supersteps: u64,
    /// Why the run stopped.
    pub halt: HaltReason,
    /// Total wall time of the run in nanoseconds.
    pub wall_ns: u64,
    /// Per-superstep metrics (per logical worker).
    pub metrics: Vec<SuperstepMetrics>,
}

impl RunSummary {
    /// Aggregate totals over all supersteps.
    pub fn totals(&self) -> RunTotals {
        RunTotals::from_supersteps(&self.metrics)
    }
}

/// The Pregel engine. Owns the program, the partitioned graph state, and the
/// aggregator machinery.
pub struct Engine<P: Program> {
    program: P,
    workers: Vec<Worker<P>>,
    /// Global vertex id -> logical worker.
    worker_of: Vec<WorkerId>,
    /// Global vertex id -> index within its worker.
    local_idx: Vec<u32>,
    config: EngineConfig,
    specs: Vec<AggregatorSpec>,
    /// Values visible to vertices/master; persistent entries accumulate.
    snapshot: Vec<AggValue>,
    global: P::G,
    num_vertices: u64,
}

impl<P: Program> Engine<P> {
    /// Builds an engine over a weighted undirected graph (each edge present
    /// in both adjacency lists). `init_v` produces initial vertex values;
    /// `init_e(src, dst, weight)` produces edge values.
    pub fn from_undirected(
        program: P,
        graph: &UndirectedGraph,
        placement: &Placement,
        config: EngineConfig,
        init_v: impl FnMut(VertexId) -> P::V,
        init_e: impl FnMut(VertexId, VertexId, u8) -> P::E,
    ) -> Self {
        assert_eq!(placement.num_vertices(), graph.num_vertices(), "placement size mismatch");
        Self::build(
            program,
            graph.num_vertices(),
            placement,
            config,
            |v| graph.neighbors(v).0,
            |v, i| graph.neighbors(v).1[i],
            init_v,
            init_e,
        )
    }

    /// Builds an engine over a directed graph (out-edges only), e.g. for
    /// PageRank-style applications. Edge weight passed to `init_e` is 1.
    pub fn from_directed(
        program: P,
        graph: &DirectedGraph,
        placement: &Placement,
        config: EngineConfig,
        init_v: impl FnMut(VertexId) -> P::V,
        init_e: impl FnMut(VertexId, VertexId, u8) -> P::E,
    ) -> Self {
        assert_eq!(placement.num_vertices(), graph.num_vertices(), "placement size mismatch");
        Self::build(
            program,
            graph.num_vertices(),
            placement,
            config,
            |v| graph.out_neighbors(v),
            |_, _| 1,
            init_v,
            init_e,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build<'g>(
        program: P,
        n: VertexId,
        placement: &Placement,
        config: EngineConfig,
        neighbors: impl Fn(VertexId) -> &'g [VertexId],
        weight_at: impl Fn(VertexId, usize) -> u8,
        mut init_v: impl FnMut(VertexId) -> P::V,
        mut init_e: impl FnMut(VertexId, VertexId, u8) -> P::E,
    ) -> Self {
        let num_workers = placement.num_workers();
        let mut workers: Vec<Worker<P>> =
            (0..num_workers).map(|i| Worker::new(i as WorkerId, num_workers)).collect();
        let worker_of: Vec<WorkerId> = placement.as_slice().to_vec();
        let mut local_idx = vec![0u32; n as usize];

        // First pass: assign vertices and values.
        for v in 0..n {
            let w = &mut workers[worker_of[v as usize] as usize];
            local_idx[v as usize] = w.global_ids.len() as u32;
            w.global_ids.push(v);
            w.values.push(init_v(v));
            w.halted.push(false);
        }
        // Second pass: adjacency.
        for w in workers.iter_mut() {
            let mut edge_count = 0usize;
            for &gid in &w.global_ids {
                edge_count += neighbors(gid).len();
            }
            w.offsets = Vec::with_capacity(w.global_ids.len() + 1);
            w.offsets.push(0);
            w.targets = Vec::with_capacity(edge_count);
            w.edge_values = Vec::with_capacity(edge_count);
            for &gid in &w.global_ids {
                let ts = neighbors(gid);
                for (i, &t) in ts.iter().enumerate() {
                    w.targets.push(t);
                    w.edge_values.push(init_e(gid, t, weight_at(gid, i)));
                }
                w.offsets.push(w.targets.len() as u64);
            }
            let n_local = w.global_ids.len();
            w.inbox = (0..n_local).map(|_| Vec::new()).collect();
            w.next_inbox = (0..n_local).map(|_| Vec::new()).collect();
        }

        let specs = program.aggregators();
        let snapshot: Vec<AggValue> = specs.iter().map(|s| s.identity()).collect();
        let global = program.init_global();
        Self {
            program,
            workers,
            worker_of,
            local_idx,
            config,
            specs,
            snapshot,
            global,
            num_vertices: n as u64,
        }
    }

    /// The engine seed (vertex programs derive their streams from it).
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Number of logical workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Read access to the global state.
    pub fn global(&self) -> &P::G {
        &self.global
    }

    /// Runs the program to completion.
    pub fn run(&mut self) -> RunSummary {
        let run_start = Instant::now();
        let mut metrics: Vec<SuperstepMetrics> = Vec::new();
        let mut halt = HaltReason::MaxSupersteps;
        let num_workers = self.workers.len();
        let threads = self.config.num_threads.clamp(1, num_workers.max(1));

        for superstep in 0..self.config.max_supersteps {
            let step_start = Instant::now();

            // --- Compute phase (parallel over logical workers). ---
            {
                let program = &self.program;
                let global = &self.global;
                let snapshot = &self.snapshot;
                let specs = &self.specs;
                let worker_of = &self.worker_of;
                let seed = self.config.seed;
                let num_vertices = self.num_vertices;
                run_parallel(&mut self.workers, threads, |w| {
                    w.compute_phase(
                        program,
                        global,
                        snapshot,
                        specs,
                        worker_of,
                        superstep,
                        seed,
                        num_vertices,
                    );
                });
            }

            // --- Exchange: transpose outboxes into per-worker mailbags. ---
            let mut mailbags: Vec<Mailbag<P::M>> =
                (0..num_workers).map(|_| Vec::new()).collect();
            for i in 0..num_workers {
                for (j, bag) in mailbags.iter_mut().enumerate() {
                    if !self.workers[i].outboxes[j].is_empty() {
                        let batch = std::mem::take(&mut self.workers[i].outboxes[j]);
                        bag.push((i as WorkerId, batch));
                    }
                }
            }

            // --- Delivery phase (parallel). ---
            {
                let program = &self.program;
                let local_idx = &self.local_idx;
                let mut bags = mailbags.into_iter();
                // Pair each worker with its mailbag, preserving order.
                let paired: Vec<(&mut Worker<P>, _)> =
                    self.workers.iter_mut().map(|w| (w, bags.next().unwrap())).collect();
                run_parallel_pairs(paired, threads, |(w, bag)| {
                    w.deliver_phase(program, bag, local_idx);
                    w.finish_superstep();
                    w.apply_mutations();
                });
            }

            // --- Merge aggregates (worker order => deterministic). ---
            let mut merged: Vec<AggValue> = self
                .specs
                .iter()
                .enumerate()
                .map(
                    |(i, s)| {
                        if s.persistent {
                            self.snapshot[i].clone()
                        } else {
                            s.identity()
                        }
                    },
                )
                .collect();
            for w in &self.workers {
                for (i, spec) in self.specs.iter().enumerate() {
                    spec.merge(&mut merged[i], &w.partial_aggs[i]);
                }
            }

            // --- Metrics. ---
            let per_worker = self.workers.iter().map(|w| w.metrics.clone()).collect::<Vec<_>>();
            let halted: u64 = self.workers.iter().map(|w| w.halted_count()).sum();
            let active_after = self.num_vertices - halted;
            let sent: u64 = per_worker.iter().map(|m| m.sent_local + m.sent_remote).sum();
            metrics.push(SuperstepMetrics {
                superstep,
                per_worker,
                wall_ns: step_start.elapsed().as_nanos() as u64,
                active_after,
            });

            // --- Master compute. ---
            let mut mctx = MasterContext {
                superstep,
                global: &mut self.global,
                aggregates: &mut merged,
                active: active_after,
                messages_sent: sent,
                halt: false,
            };
            self.program.master(&mut mctx);
            let master_halt = mctx.halt;
            self.snapshot = merged;

            if master_halt {
                halt = HaltReason::Master;
                break;
            }
            if active_after == 0 && sent == 0 {
                halt = HaltReason::AllHalted;
                break;
            }
        }

        RunSummary {
            supersteps: metrics.len() as u64,
            halt,
            wall_ns: run_start.elapsed().as_nanos() as u64,
            metrics,
        }
    }

    /// Clones all vertex values into a dense global-id-indexed vector.
    pub fn collect_values(&self) -> Vec<P::V> {
        let mut out: Vec<Option<P::V>> = vec![None; self.num_vertices as usize];
        for w in &self.workers {
            for (i, &gid) in w.global_ids.iter().enumerate() {
                out[gid as usize] = Some(w.values[i].clone());
            }
        }
        out.into_iter().map(|v| v.expect("every vertex has a value")).collect()
    }

    /// The last aggregated value of aggregator `id`.
    pub fn aggregate(&self, id: usize) -> &AggValue {
        &self.snapshot[id]
    }
}

/// Runs `f` on every worker using up to `threads` scoped threads, chunking
/// workers contiguously. Scope join is the superstep barrier.
fn run_parallel<P: Program>(
    workers: &mut [Worker<P>],
    threads: usize,
    f: impl Fn(&mut Worker<P>) + Sync,
) {
    if threads <= 1 || workers.len() <= 1 {
        for w in workers {
            f(w);
        }
        return;
    }
    let chunk = workers.len().div_ceil(threads);
    std::thread::scope(|s| {
        for slice in workers.chunks_mut(chunk) {
            s.spawn(|| {
                for w in slice {
                    f(w);
                }
            });
        }
    });
}

/// Like [`run_parallel`] but over pre-paired items.
fn run_parallel_pairs<T: Send>(mut items: Vec<T>, threads: usize, f: impl Fn(T) + Sync) {
    if threads <= 1 || items.len() <= 1 {
        for it in items.drain(..) {
            f(it);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        // Drain into per-thread chunks.
        let mut iter = items.into_iter();
        loop {
            let batch: Vec<T> = iter.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            s.spawn(|| {
                for it in batch {
                    f(it);
                }
            });
        }
    });
}
