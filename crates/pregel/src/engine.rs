//! The BSP engine: graph loading, the superstep loop, and halting.
//!
//! # Superstep anatomy
//!
//! Each superstep runs three phases over the logical workers:
//!
//! 1. **Compute** — every active vertex runs [`Program::compute`] against
//!    its slice of the worker's flat inbox; sends accumulate in per-
//!    destination outboxes. At the end of the phase each worker *publishes*
//!    its outboxes into the shared [`OutboxGrid`] by buffer swap.
//! 2. **Delivery** — each worker drains its own *column* of the grid
//!    (disjoint cells, so the phase is embarrassingly parallel and the
//!    engine thread is not a transposition bottleneck), rebuilds its flat
//!    inbox, wakes messaged vertices, and applies buffered graph mutations.
//! 3. **Epilogue** (engine thread) — aggregator merge in worker order,
//!    metrics capture, master compute, halt decision.
//!
//! With more than one thread the phases execute on a persistent worker pool
//! created once per [`Engine::run`]; a barrier-driven protocol replaces the
//! per-superstep thread spawn/join of earlier versions. Within each phase
//! the logical workers are claimed through atomic tokens rather than
//! statically partitioned, so idle threads steal work from skewed ones
//! (see [`EngineConfig::work_stealing`]); compute itself walks each
//! worker's maintained active list instead of every vertex (see
//! [`EngineConfig::dense_scan`] for the dense verification arm). All
//! message buffers are reused across supersteps, so the steady-state
//! message path performs no heap allocation (see
//! [`WorkerMetrics::fabric_reallocs`]).

use crate::aggregate::{AggValue, AggregatorSpec};
use crate::fault::{FaultyTransport, TransportFaultPlan};
use crate::metrics::{RunTotals, SuperstepMetrics, WorkerMetrics};
use crate::program::{MasterContext, Program};
use crate::reliable::ReliableTransport;
use crate::transport::{
    RetryConfig, RingTransport, Transport, TransportError, TransportKind, TransportStats,
};
use crate::types::{OutboxGrid, WorkerId, BROADCAST_MULTI, BROADCAST_TAG};
use crate::wire::WireFormat;
use crate::worker::Worker;
use crate::Placement;
use spinner_graph::{DirectedGraph, UndirectedGraph, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, RwLock};
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of OS threads executing the logical workers. Defaults to the
    /// machine's available parallelism, capped by the worker count.
    pub num_threads: usize,
    /// Hard cap on supersteps (safety net; programs normally halt earlier).
    pub max_supersteps: u64,
    /// Seed for all vertex-level randomness.
    pub seed: u64,
    /// Enable the broadcast lane: [`crate::Mailer::broadcast`] (and
    /// full-adjacency `send_to_all`) then ships one record per destination
    /// worker, expanded through a per-worker fan-out index at delivery —
    /// results are bit-identical to per-edge unicast, only the record
    /// traffic shrinks. `false` keeps every send on the per-edge path (the
    /// verification arm; also skips building the fan-out index and the
    /// per-vertex broadcast plan — worth setting for programs that never
    /// broadcast, since the lane's load-time structures cost an extra
    /// O(E) build pass and O(V) offsets per worker). Default `true`.
    pub broadcast_fabric: bool,
    /// Enable work stealing in the pooled superstep loop: logical workers
    /// are claimed per phase through atomic tokens, so a thread that
    /// finishes its preferred chunk steals whatever its siblings have not
    /// claimed yet instead of idling at the barrier. Results are identical
    /// either way — a worker's phase runs exactly once on exactly one
    /// thread, and all cross-worker merges happen in worker order on the
    /// engine thread. `false` pins every worker to its static owner
    /// (the pre-stealing schedule). Default `true`.
    pub work_stealing: bool,
    /// Preferred-chunk granularity for the pooled scheduler: worker `w`'s
    /// preferred thread is `(w / steal_chunk) % threads`. `0` (the default)
    /// picks `num_workers.div_ceil(threads)` — the contiguous blocks of the
    /// static schedule. Smaller chunks interleave ownership, which spreads
    /// hot workers across threads even before stealing kicks in.
    pub steal_chunk: usize,
    /// Drive the compute phase by a dense `0..n_local` scan (with a
    /// halted/empty-inbox skip) instead of the maintained active list. Both
    /// drivers visit the same vertices in the same order, so results are
    /// bit-identical — this is the verification arm for the active-set
    /// scheduler, same spirit as `broadcast_fabric = false`. Default
    /// `false`.
    pub dense_scan: bool,
    /// How cross-worker message batches move: [`TransportKind::Direct`]
    /// (the default) swaps outbox buffers through the in-memory
    /// [`OutboxGrid`] with no serialization; [`TransportKind::Ring`]
    /// encodes every batch into a [`crate::wire`] frame and moves it
    /// through an in-process [`RingTransport`] — the serialization
    /// boundary a distributed (TCP/UDS) backend plugs into. Results are
    /// bit-identical across transports; only bytes and buffers differ.
    pub transport: TransportKind,
    /// Frame encoding used when `transport` serialises
    /// ([`WireFormat::Compact`] by default; [`WireFormat::Raw`] is the
    /// byte-hungry verification arm). Ignored on the direct path.
    pub wire_format: WireFormat,
    /// Sender-side combiner folding on the wire path: records to the same
    /// destination vertex are folded through [`Program::combine`] in the
    /// outbox before framing. Always bit-identical (the fold replays the
    /// receiver's own chain-tail combine), so it defaults to `true`;
    /// `false` is the verification arm. Ignored on the direct path.
    pub sender_fold: bool,
    /// Retry/timeout budgets for the transport reliability layer. With
    /// `transport_retry.reliable` on (the default), every serialising
    /// transport is wrapped in [`crate::reliable::ReliableTransport`]:
    /// per-lane sequencing, cumulative-ack retransmission, dedup/reorder,
    /// and lane-health tracking. Ignored on the direct path.
    pub transport_retry: RetryConfig,
    /// Scripted frame-level chaos ([`crate::fault::FaultyTransport`])
    /// stacked under the reliability layer. Test/experiment apparatus —
    /// `None` (the default) injects nothing, and the plan is deliberately
    /// not part of any persisted configuration. Ignored on the direct path.
    pub transport_faults: Option<TransportFaultPlan>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            num_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            max_supersteps: 10_000,
            seed: 1,
            broadcast_fabric: true,
            work_stealing: true,
            steal_chunk: 0,
            dense_scan: false,
            transport: TransportKind::Direct,
            wire_format: WireFormat::Compact,
            sender_fold: true,
            transport_retry: RetryConfig::default(),
            transport_faults: None,
        }
    }
}

/// Assembles the configured transport stack, innermost first:
/// `RingTransport` → chaos wrapper (when a fault plan is scripted) →
/// reliability layer (unless disabled). The engine only ever sees the
/// outermost `dyn Transport`.
fn build_transport_stack(
    config: &EngineConfig,
    num_workers: usize,
) -> Option<Box<dyn Transport>> {
    match config.transport {
        TransportKind::Direct => None,
        TransportKind::Ring => {
            let ring = RingTransport::new(num_workers);
            let retry = config.transport_retry;
            Some(match (&config.transport_faults, retry.reliable) {
                (Some(plan), true) => Box::new(ReliableTransport::new(
                    FaultyTransport::new(ring, num_workers, plan.clone()),
                    num_workers,
                    retry,
                )),
                (Some(plan), false) => {
                    Box::new(FaultyTransport::new(ring, num_workers, plan.clone()))
                }
                (None, true) => Box::new(ReliableTransport::new(ring, num_workers, retry)),
                (None, false) => Box::new(ring),
            })
        }
    }
}

/// Why the broadcast lane is (or is not) usable right now — the diagnosable
/// face of the engine's internal `lane_open` flag. Every closed state used
/// to look identical from outside (broadcasts silently fell back to
/// per-edge unicast); [`Engine::lane_status`] names the cause so the perf
/// cliff of an oversized id space or a mid-run mutation shows up in
/// diagnostics instead of only in throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneStatus {
    /// The lane is open: broadcasts ship one record per destination worker.
    Open,
    /// `EngineConfig::broadcast_fabric` is off (the verification arm).
    DisabledByConfig,
    /// The vertex-id space does not fit beside [`BROADCAST_TAG`]
    /// (more than 2³¹ vertices), so the fan-out index was never built and
    /// every broadcast ships as per-edge unicast for this topology. Only
    /// possible on the direct in-memory path: a serialising transport
    /// carries the broadcast flag out of band and has no id cap.
    IdSpaceExceeded,
    /// A graph mutation was applied mid-run, outdating the load-time
    /// fan-out index; the lane reopens at the next topology (re)load.
    ClosedByMutation,
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// Every vertex voted to halt and no messages were in flight.
    AllHalted,
    /// The master compute requested the halt.
    Master,
    /// The configured superstep cap was reached.
    MaxSupersteps,
    /// A transport lane failed unrecoverably (retry budget or deadline
    /// exhausted, peer panicked) — the run aborted with its last
    /// superstep's traffic accounted but its results unusable. Callers
    /// treat [`TransportError::sender`] as a lost worker and escalate into
    /// the same reseed-and-reconverge path a `WorkerLoss` event takes
    /// (after [`Engine::run`]'s built-in transport reset revives the
    /// lanes).
    TransportFailed(TransportError),
}

/// Result of a run: superstep count, halt cause, and per-superstep metrics.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Supersteps executed.
    pub supersteps: u64,
    /// Why the run stopped.
    pub halt: HaltReason,
    /// Total wall time of the run in nanoseconds.
    pub wall_ns: u64,
    /// Per-superstep metrics (per logical worker).
    pub metrics: Vec<SuperstepMetrics>,
}

impl RunSummary {
    /// Aggregate totals over all supersteps.
    pub fn totals(&self) -> RunTotals {
        RunTotals::from_supersteps(&self.metrics)
    }
}

/// What an [`Engine::replace`] migration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaceStats {
    /// Vertices whose hosting worker changed.
    pub moved: u64,
    /// Vertices covered by the new placement.
    pub total: u64,
}

impl ReplaceStats {
    /// Fraction of the vertices that migrated (0.0 for an empty graph).
    pub fn moved_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.moved as f64 / self.total as f64
        }
    }
}

/// The Pregel engine. Owns the program, the partitioned graph state, and the
/// aggregator machinery.
pub struct Engine<P: Program> {
    program: P,
    workers: Vec<Worker<P>>,
    /// Global vertex id -> logical worker.
    worker_of: Vec<WorkerId>,
    /// Global vertex id -> index within its worker.
    local_idx: Vec<u32>,
    config: EngineConfig,
    specs: Vec<AggregatorSpec>,
    /// Values visible to vertices/master; persistent entries accumulate.
    snapshot: Vec<AggValue>,
    global: P::G,
    num_vertices: u64,
    /// The all-to-all exchange buffers (capacity persists across runs).
    /// Idle (every cell empty) when a serialising transport is configured.
    mail_grid: OutboxGrid<P::M>,
    /// The serialization boundary, when one is configured
    /// ([`EngineConfig::transport`]): `None` keeps the zero-copy direct
    /// path; `Some` routes every cross-worker batch through
    /// [`Worker::publish_wire`] / [`Worker::deliver_and_build_wire`].
    transport: Option<Box<dyn Transport>>,
    /// Whether the broadcast lane is currently usable: opened at (re)load
    /// time (config on, vertex ids taggable) and closed — for the rest of
    /// the run — by the first applied graph mutation, which outdates the
    /// load-time fan-out index. Workers snapshot it at each compute phase;
    /// the store happens in the delivery phase, so the superstep barrier
    /// orders it before every read.
    lane_open: AtomicBool,
}

/// Master-owned state the worker threads read during the compute phase.
/// The `RwLock` access windows never overlap — readers hold it only between
/// the start and mid barriers, the engine thread writes only after the end
/// barrier — so it never blocks in practice.
struct MasterState<'a, G> {
    snapshot: &'a mut Vec<AggValue>,
    global: &'a mut G,
}

/// What a worker reports to the engine thread at the end of each superstep.
#[derive(Default)]
struct StepSlot {
    metrics: WorkerMetrics,
    partials: Vec<AggValue>,
    halted: u64,
    /// First typed transport failure this worker's publish phase raised
    /// (cleared by the engine thread each superstep). Kept separate from
    /// the delivery error so error selection is phase-ordered and
    /// deterministic, matching the serial loop exactly.
    publish_error: Option<TransportError>,
    /// First typed transport failure this worker's delivery phase raised.
    delivery_error: Option<TransportError>,
}

impl<P: Program> Engine<P> {
    /// Builds an engine over a weighted undirected graph (each edge present
    /// in both adjacency lists). `init_v` produces initial vertex values;
    /// `init_e(src, dst, weight)` produces edge values.
    pub fn from_undirected(
        program: P,
        graph: &UndirectedGraph,
        placement: &Placement,
        config: EngineConfig,
        init_v: impl FnMut(VertexId) -> P::V,
        init_e: impl FnMut(VertexId, VertexId, u8) -> P::E,
    ) -> Self {
        assert_eq!(placement.num_vertices(), graph.num_vertices(), "placement size mismatch");
        Self::build(
            program,
            graph.num_vertices(),
            placement,
            config,
            |v| graph.neighbors(v).0,
            |v, i| graph.neighbors(v).1[i],
            init_v,
            init_e,
        )
    }

    /// Builds an engine over a directed graph (out-edges only), e.g. for
    /// PageRank-style applications. Edge weight passed to `init_e` is 1.
    pub fn from_directed(
        program: P,
        graph: &DirectedGraph,
        placement: &Placement,
        config: EngineConfig,
        init_v: impl FnMut(VertexId) -> P::V,
        init_e: impl FnMut(VertexId, VertexId, u8) -> P::E,
    ) -> Self {
        assert_eq!(placement.num_vertices(), graph.num_vertices(), "placement size mismatch");
        Self::build(
            program,
            graph.num_vertices(),
            placement,
            config,
            |v| graph.out_neighbors(v),
            |_, _| 1,
            init_v,
            init_e,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build<'g>(
        program: P,
        n: VertexId,
        placement: &Placement,
        config: EngineConfig,
        neighbors: impl Fn(VertexId) -> &'g [VertexId],
        weight_at: impl Fn(VertexId, usize) -> u8,
        mut init_v: impl FnMut(VertexId) -> P::V,
        mut init_e: impl FnMut(VertexId, VertexId, u8) -> P::E,
    ) -> Self {
        let num_workers = placement.num_workers();
        let workers: Vec<Worker<P>> =
            (0..num_workers).map(|i| Worker::new(i as WorkerId, num_workers)).collect();
        let specs = program.aggregators();
        let snapshot: Vec<AggValue> = specs.iter().map(|s| s.identity()).collect();
        let global = program.init_global();
        let mail_grid: OutboxGrid<P::M> =
            (0..num_workers * num_workers).map(|_| Mutex::new(Vec::new())).collect();
        let transport = build_transport_stack(&config, num_workers);
        let mut engine = Self {
            program,
            workers,
            worker_of: Vec::new(),
            local_idx: Vec::new(),
            config,
            specs,
            snapshot,
            global,
            num_vertices: 0,
            mail_grid,
            transport,
            lane_open: AtomicBool::new(false),
        };
        engine.load_topology(
            n,
            placement,
            neighbors,
            |v| (init_v(v), false),
            |src, i, dst| init_e(src, dst, weight_at(src, i)),
        );
        engine
    }

    /// Re-targets a finished engine at a (possibly mutated) weighted
    /// undirected graph for another run, **in place**: program/aggregator
    /// state restarts fresh, but every message-fabric buffer — the outbox
    /// grid, the delivery staging chains, the flat inboxes — and every
    /// topology vector keeps its allocation. A session that re-converges
    /// after a stream of graph deltas therefore performs no steady-state
    /// fabric reallocations after its first window (pinned by
    /// [`WorkerMetrics::fabric_reallocs`]).
    ///
    /// The worker count is fixed for the life of an engine (`placement` must
    /// match); the vertex set may grow or shrink freely.
    pub fn warm_reset_undirected(
        &mut self,
        program: P,
        graph: &UndirectedGraph,
        placement: &Placement,
        mut init_v: impl FnMut(VertexId) -> P::V,
        init_e: impl FnMut(VertexId, VertexId, u8) -> P::E,
    ) {
        self.warm_reset_undirected_seeded(
            program,
            graph,
            placement,
            |v| (init_v(v), false),
            init_e,
        );
    }

    /// [`Self::warm_reset_undirected`] with per-vertex halted seeding:
    /// `init_v` also yields each vertex's initial halted flag, so a caller
    /// that already knows which vertices have work (e.g. a frontier derived
    /// from a graph delta) can start the run with everything else parked —
    /// the active-set scheduler then never visits the parked vertices
    /// unless a message wakes them. Pair with [`Self::set_global`] /
    /// [`Self::set_aggregate`] when the program's warm-up phases are being
    /// skipped and their outputs seeded directly.
    pub fn warm_reset_undirected_seeded(
        &mut self,
        program: P,
        graph: &UndirectedGraph,
        placement: &Placement,
        mut init_v: impl FnMut(VertexId) -> (P::V, bool),
        mut init_e: impl FnMut(VertexId, VertexId, u8) -> P::E,
    ) {
        assert_eq!(placement.num_vertices(), graph.num_vertices(), "placement size mismatch");
        self.program = program;
        self.specs = self.program.aggregators();
        self.snapshot = self.specs.iter().map(|s| s.identity()).collect();
        self.global = self.program.init_global();
        self.load_topology(
            graph.num_vertices(),
            placement,
            |v| graph.neighbors(v).0,
            &mut init_v,
            |src, i, dst| init_e(src, dst, graph.neighbors(src).1[i]),
        );
    }

    /// Overwrites the global state ahead of a run — the seeding companion
    /// of [`Self::warm_reset_undirected_seeded`] for callers that skip a
    /// program's warm-up phases and install their outputs directly.
    pub fn set_global(&mut self, global: P::G) {
        self.global = global;
    }

    /// Overwrites one aggregator's snapshot value ahead of a run. Only
    /// meaningful for persistent aggregators (regular ones reset to
    /// identity at the next epilogue); the caller owns type agreement with
    /// the aggregator's spec.
    pub fn set_aggregate(&mut self, id: usize, value: AggValue) {
        self.snapshot[id] = value;
    }

    /// Re-places the vertices of an idle engine onto the workers prescribed
    /// by `placement`, **in place**: vertex values, halted flags, and the
    /// per-worker adjacency migrate to their new owners, the `local_idx`
    /// map is rebuilt, and every message-fabric buffer — outbox grid, local
    /// fast-path queues, staging chains, flat inboxes — keeps its capacity
    /// via the same machinery as [`Self::warm_reset_undirected`]. Program,
    /// aggregator, and global state are untouched, so a converged Spinner
    /// run can be re-hosted by its computed labels (paper §V-F) without
    /// recomputing anything.
    ///
    /// Call this only between runs: any message still sitting in a flat
    /// inbox (possible after a [`HaltReason::Master`] or
    /// [`HaltReason::MaxSupersteps`] halt) is discarded.
    ///
    /// The worker count is fixed for the life of an engine; `placement`
    /// must cover exactly the current vertex set.
    pub fn replace(&mut self, placement: &Placement) -> ReplaceStats {
        assert_eq!(
            placement.num_vertices() as u64,
            self.num_vertices,
            "placement size mismatch"
        );
        let n = self.num_vertices as usize;
        let moved =
            (0..n).filter(|&v| placement.as_slice()[v] != self.worker_of[v]).count() as u64;
        // Identical placement: nothing to migrate, skip the O(V + E)
        // gather/rebuild entirely (callers re-checking a threshold against
        // a stable placement hit this path every time).
        if moved == 0 {
            return ReplaceStats { moved: 0, total: self.num_vertices };
        }

        // Gather the distributed per-vertex state into global order, moving
        // (not cloning) values and edge state out of the workers' stores.
        let mut values: Vec<Option<P::V>> = (0..n).map(|_| None).collect();
        let mut halted = vec![false; n];
        let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
        offsets.push(0);
        {
            let mut counts = vec![0u64; n];
            for w in &self.workers {
                for (li, &gid) in w.global_ids.iter().enumerate() {
                    counts[gid as usize] = w.offsets[li + 1] - w.offsets[li];
                }
            }
            for v in 0..n {
                offsets.push(offsets[v] + counts[v]);
            }
        }
        let total_edges = offsets[n] as usize;
        let mut targets = vec![0 as VertexId; total_edges];
        let mut edge_values: Vec<Option<P::E>> = (0..total_edges).map(|_| None).collect();
        for w in &mut self.workers {
            for (li, value) in std::mem::take(&mut w.values).into_iter().enumerate() {
                let gid = w.global_ids[li] as usize;
                values[gid] = Some(value);
                halted[gid] = w.halted[li];
            }
            let w_targets = std::mem::take(&mut w.targets);
            let mut w_values = std::mem::take(&mut w.edge_values).into_iter();
            for (li, &gid) in w.global_ids.iter().enumerate() {
                let lo = w.offsets[li] as usize;
                let len = w.offsets[li + 1] as usize - lo;
                let dst = offsets[gid as usize] as usize;
                targets[dst..dst + len].copy_from_slice(&w_targets[lo..lo + len]);
                for slot in edge_values[dst..dst + len].iter_mut() {
                    *slot = Some(w_values.next().expect("edge value for each target"));
                }
            }
        }

        self.load_topology(
            n as VertexId,
            placement,
            |v| &targets[offsets[v as usize] as usize..offsets[v as usize + 1] as usize],
            |v| (values[v as usize].take().expect("gathered value"), halted[v as usize]),
            |src, i, _dst| {
                edge_values[offsets[src as usize] as usize + i]
                    .take()
                    .expect("gathered edge value")
            },
        );
        ReplaceStats { moved, total: self.num_vertices }
    }

    /// (Re)loads vertices, values, and adjacency into the workers, reusing
    /// every existing allocation. Shared by the cold [`Self::build`] path,
    /// [`Self::warm_reset_undirected`], and [`Self::replace`]. `vertex_init`
    /// yields each vertex's value and halted flag; `edge_init` yields the
    /// value of the `i`-th edge of `src`.
    fn load_topology<'g>(
        &mut self,
        n: VertexId,
        placement: &Placement,
        neighbors: impl Fn(VertexId) -> &'g [VertexId],
        mut vertex_init: impl FnMut(VertexId) -> (P::V, bool),
        mut edge_init: impl FnMut(VertexId, usize, VertexId) -> P::E,
    ) {
        let num_workers = self.workers.len();
        assert_eq!(
            placement.num_workers(),
            num_workers,
            "the worker count is fixed for the life of an engine"
        );
        self.num_vertices = n as u64;
        self.worker_of.clear();
        self.worker_of.extend_from_slice(placement.as_slice());
        self.local_idx.clear();
        self.local_idx.resize(n as usize, 0);
        for w in &mut self.workers {
            w.clear_topology();
        }
        // First pass: assign vertices, values, and halted flags.
        for v in 0..n {
            let w = &mut self.workers[self.worker_of[v as usize] as usize];
            self.local_idx[v as usize] = w.global_ids.len() as u32;
            w.global_ids.push(v);
            let (value, halted) = vertex_init(v);
            w.values.push(value);
            w.halted.push(halted);
            w.num_halted += u64::from(halted);
        }
        // Second pass: adjacency, counting per-worker inbound entries (the
        // delivery-volume bound used to pre-reserve the message fabric),
        // split into worker-local ones (served by the fast-path queue) and
        // the rest — and, with the broadcast lane on, counting each worker's
        // fan-out index entries per sender in the same sweep.
        //
        // The *direct* lane needs vertex ids to fit beside
        // [`BROADCAST_TAG`]; larger graphs fall back to per-edge unicast
        // there. The wire path carries the broadcast flag out of band
        // (sideband marks in memory, section headers on the wire), so it
        // has no id cap and the lane stays open at any size. Either way
        // the fallback is *diagnosable*, not silent:
        // [`Engine::lane_status`] reports `IdSpaceExceeded`.
        let build_fanout =
            fanout_allowed(self.config.broadcast_fabric, self.transport.is_some(), n as u64);
        // The fan-out vectors move out of the workers for the build (two
        // simultaneous worker borrows otherwise: reading one worker's
        // adjacency while counting into another's index) and are handed
        // back below, capacities intact across warm resets and migrations.
        let mut fans: Vec<(Vec<u32>, Vec<u32>)> = self
            .workers
            .iter_mut()
            .map(|w| (std::mem::take(&mut w.fan_offsets), std::mem::take(&mut w.fan_targets)))
            .collect();
        for (offsets, targets) in &mut fans {
            offsets.clear();
            targets.clear();
            if build_fanout {
                offsets.resize(n as usize + 1, 0);
            }
        }
        let worker_of = &self.worker_of;
        let mut inbound = vec![0usize; num_workers];
        let mut self_inbound = vec![0usize; num_workers];
        // Scratch for the per-vertex destination-worker dedup of the
        // broadcast *plan* (stamps keyed by a monotonically growing vertex
        // epoch, so no per-vertex reset).
        let mut plan_stamp = vec![0u64; num_workers];
        let mut plan_pos = vec![0u32; num_workers];
        let mut plan_epoch = 0u64;
        for w in &mut self.workers {
            let me = w.id as usize;
            let mut edge_count = 0usize;
            for &gid in &w.global_ids {
                edge_count += neighbors(gid).len();
            }
            w.offsets.reserve(w.global_ids.len() + 1);
            w.offsets.push(0);
            w.targets.reserve(edge_count);
            w.edge_values.reserve(edge_count);
            if build_fanout {
                w.plan_offsets.push(0);
            }
            for &gid in &w.global_ids {
                let ts = neighbors(gid);
                plan_epoch += 1;
                let mut local_count = 0u32;
                for (i, &t) in ts.iter().enumerate() {
                    w.targets.push(t);
                    w.edge_values.push(edge_init(gid, i, t));
                    let dst = worker_of[t as usize] as usize;
                    if dst == me {
                        self_inbound[dst] += 1;
                        local_count += 1;
                    } else {
                        inbound[dst] += 1;
                    }
                    if build_fanout {
                        fans[dst].0[gid as usize + 1] += 1;
                        if plan_stamp[dst] != plan_epoch {
                            plan_stamp[dst] = plan_epoch;
                            plan_pos[dst] = w.plan_workers.len() as u32;
                            w.plan_workers.push(dst as WorkerId);
                            // Tentatively a lone neighbour on `dst`; a
                            // second one demotes the entry to a fanned-out
                            // broadcast record.
                            w.plan_single.push(t);
                        } else {
                            w.plan_single[plan_pos[dst] as usize] = BROADCAST_MULTI;
                        }
                    }
                }
                w.offsets.push(w.targets.len() as u64);
                if build_fanout {
                    w.plan_offsets.push(w.plan_workers.len() as u32);
                    w.plan_local.push(local_count);
                    w.plan_remote.push(ts.len() as u32 - local_count);
                }
            }
        }
        for ((w, inb), self_inb) in self.workers.iter_mut().zip(inbound).zip(self_inbound) {
            w.reset_fabric();
            // The staging chains and flat inbox see every message; the
            // fast-path queue only the worker-local ones.
            w.reserve_inbound(inb + self_inb, self_inb);
        }
        if build_fanout {
            // Prefix-sum the per-sender counts into CSR offsets, then fill
            // each index by revisiting the (now loaded) adjacency once. A
            // sender's entries per destination worker are contiguous and in
            // adjacency order — the positions per-edge unicasts would
            // occupy — so a small per-worker cursor that resets per sender
            // suffices; no additional O(V x W) cursor scratch on top of the
            // offsets. (The offset arrays themselves are O(V) per worker —
            // the dense global-sender keying that makes delivery-time
            // lookups O(1); a compacted sender remap would shrink that to
            // O(cut senders) if worker counts ever grow large.)
            for (offsets, targets) in &mut fans {
                for s in 0..n as usize {
                    offsets[s + 1] += offsets[s];
                }
                targets.resize(offsets[n as usize] as usize, 0);
            }
            let local_idx = &self.local_idx;
            let mut written = vec![0u32; num_workers];
            for w in &self.workers {
                for (li, &gid) in w.global_ids.iter().enumerate() {
                    let lo = w.offsets[li] as usize;
                    let hi = w.offsets[li + 1] as usize;
                    for &t in &w.targets[lo..hi] {
                        let dst = worker_of[t as usize] as usize;
                        let (offs, tgts) = &mut fans[dst];
                        tgts[(offs[gid as usize] + written[dst]) as usize] =
                            local_idx[t as usize];
                        written[dst] += 1;
                    }
                    for &t in &w.targets[lo..hi] {
                        written[worker_of[t as usize] as usize] = 0;
                    }
                }
            }
        }
        for (w, (offsets, targets)) in self.workers.iter_mut().zip(fans) {
            w.fan_offsets = offsets;
            w.fan_targets = targets;
        }
        // A fresh topology always reopens the lane: mutations applied by the
        // previous run are folded into the adjacency the index was just
        // rebuilt from.
        self.lane_open.store(build_fanout, Ordering::Release);
        // A finished run leaves every grid cell drained (delivery precedes
        // the halt decision), so the grid carries only capacity forward.
        debug_assert!(
            self.mail_grid.iter().all(|c| c.lock().expect("grid lock").is_empty()),
            "mail grid not drained before topology reload"
        );
    }

    /// The engine seed (vertex programs derive their streams from it).
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Number of logical workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Read access to the global state.
    pub fn global(&self) -> &P::G {
        &self.global
    }

    /// Current state of the broadcast lane, with the cause when closed —
    /// see [`LaneStatus`]. Derived, not stored: the engine keeps one
    /// boolean and this method names why it is what it is. Precedence when
    /// several causes hold: a disabled config wins over an oversized id
    /// space (the lane would not have been built regardless of size).
    pub fn lane_status(&self) -> LaneStatus {
        derive_lane_status(
            self.lane_open.load(Ordering::Acquire),
            self.config.broadcast_fabric,
            self.transport.is_some(),
            self.num_vertices,
        )
    }

    /// Installs (or replaces) a scripted transport fault plan and rebuilds
    /// the transport stack around it. A no-op on the direct path — chaos
    /// only makes sense where frames exist. Call between runs; in-flight
    /// frames of a previous stack are discarded with it (a finished run
    /// leaves none).
    pub fn inject_transport_faults(&mut self, plan: TransportFaultPlan) {
        self.config.transport_faults = Some(plan);
        let num_workers = self.workers.len();
        self.transport = build_transport_stack(&self.config, num_workers);
    }

    /// Clears transport in-flight state — sequence windows, held frames,
    /// lane health — keeping buffer pools and consumed fault-plan entries.
    /// [`Self::run`] does this automatically; exposed for callers that
    /// inspect lane health between an abort and the re-run.
    pub fn reset_transport(&self) {
        if let Some(t) = &self.transport {
            t.reset();
        }
    }

    /// `(degraded, dead)` transport lane tallies — `(0, 0)` on the direct
    /// path or a fault-free run.
    pub fn transport_health_counts(&self) -> (u64, u64) {
        self.transport.as_ref().map_or((0, 0), |t| t.health_counts())
    }

    /// `(injected, remaining)` scripted-fault tallies from the chaos layer
    /// — `(0, 0)` when no fault plan is installed.
    pub fn transport_chaos_counts(&self) -> (u64, u64) {
        self.transport.as_ref().map_or((0, 0), |t| t.chaos_counts())
    }

    /// Cumulative receive-side recovery counters summed over all workers
    /// (retransmits, NACKs, dedups, reorders) — all zero on the direct
    /// path or a fault-free run.
    pub fn transport_recv_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        if let Some(t) = &self.transport {
            for dst in 0..self.workers.len() {
                total.add(&t.recv_stats(dst));
            }
        }
        total
    }

    /// Runs the program to completion.
    pub fn run(&mut self) -> RunSummary {
        let run_start = Instant::now();
        // Every run starts on clean lanes: after a normal halt this only
        // zeroes sequence windows (all frames were delivered), but after a
        // `TransportFailed` abort it drains stranded frames and revives
        // dead lanes — the in-process model of a replacement worker's
        // fresh connections. Buffer pools survive, so no reallocation.
        if let Some(t) = &self.transport {
            t.reset();
        }
        let num_workers = self.workers.len();
        let threads = self.config.num_threads.clamp(1, num_workers.max(1));
        let mut metrics: Vec<SuperstepMetrics> = Vec::new();
        let halt = if threads <= 1 || num_workers <= 1 {
            self.run_serial(&mut metrics)
        } else {
            self.run_pooled(threads, &mut metrics)
        };
        RunSummary {
            supersteps: metrics.len() as u64,
            halt,
            wall_ns: run_start.elapsed().as_nanos() as u64,
            metrics,
        }
    }

    /// Single-threaded superstep loop: same phase code as the pool, executed
    /// inline in worker order (bit-identical results by construction).
    fn run_serial(&mut self, metrics: &mut Vec<SuperstepMetrics>) -> HaltReason {
        let num_workers = self.workers.len();
        let sideband = self.transport.is_some();
        for superstep in 0..self.config.max_supersteps {
            let step_start = Instant::now();
            let lane_open = self.lane_open.load(Ordering::Acquire);
            // First publish-phase error (in worker order), else first
            // delivery-phase error — the same phase-then-worker selection
            // the pooled loop applies, so the surfaced failure is
            // thread-count-invariant.
            let mut publish_error: Option<TransportError> = None;
            let mut delivery_error: Option<TransportError> = None;
            for w in &mut self.workers {
                w.compute_phase(
                    &self.program,
                    &self.global,
                    &self.snapshot,
                    &self.specs,
                    &self.worker_of,
                    superstep,
                    self.config.seed,
                    self.num_vertices,
                    lane_open,
                    self.config.dense_scan,
                    sideband,
                );
                match self.transport.as_deref() {
                    Some(t) => {
                        if let Err(e) = w.publish_wire(
                            &self.program,
                            t,
                            self.config.wire_format,
                            self.config.sender_fold,
                            num_workers,
                        ) {
                            publish_error.get_or_insert(e);
                        }
                    }
                    None => w.publish_outboxes(&self.mail_grid, num_workers),
                }
            }
            for w in &mut self.workers {
                match self.transport.as_deref() {
                    Some(t) => {
                        if let Err(e) = w.deliver_and_build_wire(
                            &self.program,
                            t,
                            &self.local_idx,
                            num_workers,
                        ) {
                            delivery_error.get_or_insert(e);
                        }
                    }
                    None => w.deliver_and_build(
                        &self.program,
                        &self.mail_grid,
                        &self.local_idx,
                        num_workers,
                    ),
                }
                w.apply_mutations(&self.lane_open);
            }

            let per_worker: Vec<WorkerMetrics> =
                self.workers.iter().map(|w| w.metrics.clone()).collect();
            let halted: u64 = self.workers.iter().map(|w| w.halted_count()).sum();
            let (step, reason) = superstep_epilogue(
                &self.program,
                &self.specs,
                &mut self.snapshot,
                &mut self.global,
                superstep,
                self.num_vertices,
                step_start,
                per_worker,
                self.workers.iter().map(|w| w.partial_aggs.as_slice()),
                halted,
            );
            metrics.push(step);
            // Transport failure aborts after the metrics push — the failed
            // superstep's traffic is accounted — and outranks any program-
            // level halt decision taken on its partial state.
            if let Some(e) = publish_error.or(delivery_error) {
                return HaltReason::TransportFailed(e);
            }
            if let Some(reason) = reason {
                return reason;
            }
        }
        HaltReason::MaxSupersteps
    }

    /// Superstep loop on a persistent worker pool: `threads` scoped threads
    /// advance through the compute and delivery phases via a barrier
    /// protocol — no thread is spawned or joined between supersteps.
    ///
    /// Within each phase, logical workers are *claimed*, not statically
    /// assigned: `claims[w]` holds the next unclaimed phase token
    /// (`2 x superstep` for compute, `2 x superstep + 1` for delivery), and
    /// a thread takes worker `w` by compare-exchanging the token forward.
    /// Every thread first walks its preferred chunks (worker `w` prefers
    /// thread `(w / chunk) % threads`, reproducing the old contiguous
    /// blocks when `steal_chunk` is 0), then — with `work_stealing` on —
    /// sweeps the remaining workers from the high end, picking up whatever
    /// slower siblings have not claimed. Exactly-once execution per phase
    /// is guaranteed by the CAS; cross-phase visibility by the barriers
    /// (a claim sweep completes before its thread's barrier wait, so every
    /// worker's phase has run when the barrier releases). All cross-worker
    /// merges happen in worker order on the engine thread, so the schedule
    /// — static, stolen, or interleaved — never affects results.
    fn run_pooled(
        &mut self,
        threads: usize,
        metrics: &mut Vec<SuperstepMetrics>,
    ) -> HaltReason {
        let num_workers = self.workers.len();
        let seed = self.config.seed;
        let max_supersteps = self.config.max_supersteps;
        let num_vertices = self.num_vertices;
        let dense_scan = self.config.dense_scan;
        let work_stealing = self.config.work_stealing;
        // `Option<&dyn Transport>` is `Copy`, so each pool thread captures
        // its own copy of the shared handle (the trait requires `Sync`).
        let transport = self.transport.as_deref();
        let wire_format = self.config.wire_format;
        let sender_fold = self.config.sender_fold;
        let sideband = transport.is_some();
        let chunk = if self.config.steal_chunk == 0 {
            num_workers.div_ceil(threads)
        } else {
            self.config.steal_chunk
        };
        // Split borrows: the worker cells move into the pool threads while
        // the engine thread keeps the master-owned state.
        let program = &self.program;
        let specs = self.specs.as_slice();
        let worker_of = self.worker_of.as_slice();
        let local_idx = self.local_idx.as_slice();
        let grid = &self.mail_grid;
        let lane = &self.lane_open;
        let master =
            RwLock::new(MasterState { snapshot: &mut self.snapshot, global: &mut self.global });
        let slots: Vec<Mutex<StepSlot>> =
            (0..num_workers).map(|_| Mutex::new(StepSlot::default())).collect();
        // One cell and one claim token per logical worker. The mutex is
        // uncontended by construction — only the CAS winner ever locks a
        // cell — it exists to move `&mut Worker` across threads safely.
        let cells: Vec<Mutex<&mut Worker<P>>> =
            self.workers.iter_mut().map(Mutex::new).collect();
        let claims: Vec<AtomicU64> = (0..num_workers).map(|_| AtomicU64::new(0)).collect();

        // Phase barrier across the pool plus the engine thread; three waits
        // per superstep (start -> compute, mid -> deliver, end -> epilogue).
        let barrier = Barrier::new(threads + 1);
        let stop = AtomicBool::new(false);

        let mut halt = HaltReason::MaxSupersteps;
        std::thread::scope(|s| {
            for t in 0..threads {
                let (barrier, stop, master, slots) = (&barrier, &stop, &master, &slots);
                let (cells, claims) = (&cells, &claims);
                s.spawn(move || {
                    let claim = |w: usize, token: u64| {
                        claims[w]
                            .compare_exchange(
                                token,
                                token + 1,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                    };
                    // Walks this thread's preferred chunks, then (stealing
                    // on) the rest from the high end — farthest first from
                    // the low-indexed chunks the static schedule starts on.
                    let sweep = |token: u64, run: &mut dyn FnMut(usize)| {
                        let mut start = t * chunk;
                        while start < num_workers {
                            for w in start..(start + chunk).min(num_workers) {
                                if claim(w, token) {
                                    run(w);
                                }
                            }
                            start += threads * chunk;
                        }
                        if work_stealing {
                            for w in (0..num_workers).rev() {
                                if claim(w, token) {
                                    run(w);
                                }
                            }
                        }
                    };
                    let mut superstep = 0u64;
                    loop {
                        barrier.wait();
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        {
                            let guard = master.read().expect("master state");
                            let m = &*guard;
                            // Lane stores happen in the delivery phase, so
                            // the start barrier orders them before this load.
                            let lane_open = lane.load(Ordering::Acquire);
                            sweep(superstep * 2, &mut |wi| {
                                let mut w = cells[wi].lock().expect("worker cell");
                                w.compute_phase(
                                    program,
                                    &*m.global,
                                    m.snapshot,
                                    specs,
                                    worker_of,
                                    superstep,
                                    seed,
                                    num_vertices,
                                    lane_open,
                                    dense_scan,
                                    sideband,
                                );
                                match transport {
                                    Some(t) => {
                                        if let Err(e) = w.publish_wire(
                                            program,
                                            t,
                                            wire_format,
                                            sender_fold,
                                            num_workers,
                                        ) {
                                            slots[wi]
                                                .lock()
                                                .expect("step slot")
                                                .publish_error
                                                .get_or_insert(e);
                                        }
                                    }
                                    None => w.publish_outboxes(grid, num_workers),
                                }
                            });
                        }
                        barrier.wait();
                        sweep(superstep * 2 + 1, &mut |wi| {
                            let mut w = cells[wi].lock().expect("worker cell");
                            let delivered = match transport {
                                Some(t) => {
                                    w.deliver_and_build_wire(program, t, local_idx, num_workers)
                                }
                                None => {
                                    w.deliver_and_build(program, grid, local_idx, num_workers);
                                    Ok(())
                                }
                            };
                            w.apply_mutations(lane);
                            let mut slot = slots[wi].lock().expect("step slot");
                            if let Err(e) = delivered {
                                slot.delivery_error.get_or_insert(e);
                            }
                            slot.metrics.clone_from(&w.metrics);
                            // Swap (not take): the stale vector handed back
                            // is reset in place next superstep, so the
                            // partials rotate without reallocating.
                            std::mem::swap(&mut slot.partials, &mut w.partial_aggs);
                            slot.halted = w.halted_count();
                        });
                        barrier.wait();
                        superstep += 1;
                    }
                });
            }

            // Reused across supersteps: swapped against the slots so the
            // partial vectors rotate worker -> slot -> here and back.
            let mut partials: Vec<Vec<AggValue>> =
                (0..num_workers).map(|_| Vec::new()).collect();
            for superstep in 0..max_supersteps {
                let step_start = Instant::now();
                barrier.wait(); // pool computes and publishes
                barrier.wait(); // pool delivers and reports
                barrier.wait(); // reports ready
                let mut per_worker = Vec::with_capacity(num_workers);
                let mut halted = 0u64;
                let mut publish_error: Option<TransportError> = None;
                let mut delivery_error: Option<TransportError> = None;
                for (slot, buf) in slots.iter().zip(partials.iter_mut()) {
                    let mut slot = slot.lock().expect("step slot");
                    per_worker.push(slot.metrics.clone());
                    std::mem::swap(&mut slot.partials, buf);
                    halted += slot.halted;
                    if let Some(e) = slot.publish_error.take() {
                        publish_error.get_or_insert(e);
                    }
                    if let Some(e) = slot.delivery_error.take() {
                        delivery_error.get_or_insert(e);
                    }
                }
                let mut guard = master.write().expect("master state");
                let m = &mut *guard;
                let (step, reason) = superstep_epilogue(
                    program,
                    specs,
                    m.snapshot,
                    m.global,
                    superstep,
                    num_vertices,
                    step_start,
                    per_worker,
                    partials.iter().map(|p| p.as_slice()),
                    halted,
                );
                drop(guard);
                metrics.push(step);
                if let Some(e) = publish_error.or(delivery_error) {
                    halt = HaltReason::TransportFailed(e);
                    break;
                }
                if let Some(reason) = reason {
                    halt = reason;
                    break;
                }
            }
            stop.store(true, Ordering::Release);
            barrier.wait(); // release the pool to observe `stop` and exit
        });
        halt
    }

    /// Clones all vertex values into a dense global-id-indexed vector
    /// (direct gather through the placement maps — no `Option` round-trip).
    pub fn collect_values(&self) -> Vec<P::V> {
        (0..self.num_vertices as usize)
            .map(|v| {
                let w = &self.workers[self.worker_of[v] as usize];
                w.values[self.local_idx[v] as usize].clone()
            })
            .collect()
    }

    /// The last aggregated value of aggregator `id`.
    pub fn aggregate(&self, id: usize) -> &AggValue {
        &self.snapshot[id]
    }
}

/// Serial tail of a superstep: merge aggregator partials in worker order,
/// capture metrics, run master compute, and decide whether to halt.
#[allow(clippy::too_many_arguments)]
fn superstep_epilogue<'a, P: Program>(
    program: &P,
    specs: &[AggregatorSpec],
    snapshot: &mut Vec<AggValue>,
    global: &mut P::G,
    superstep: u64,
    num_vertices: u64,
    step_start: Instant,
    per_worker: Vec<WorkerMetrics>,
    partials: impl Iterator<Item = &'a [AggValue]>,
    halted: u64,
) -> (SuperstepMetrics, Option<HaltReason>) {
    // Merge aggregates (worker order => deterministic).
    let mut merged: Vec<AggValue> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| if s.persistent { snapshot[i].clone() } else { s.identity() })
        .collect();
    for worker_partials in partials {
        for (i, spec) in specs.iter().enumerate() {
            spec.merge(&mut merged[i], &worker_partials[i]);
        }
    }

    let active_after = num_vertices - halted;
    let sent: u64 = per_worker.iter().map(|m| m.sent_local + m.sent_remote).sum();
    let step = SuperstepMetrics {
        superstep,
        per_worker,
        wall_ns: step_start.elapsed().as_nanos() as u64,
        active_after,
    };

    let mut mctx = MasterContext {
        superstep,
        global,
        aggregates: &mut merged,
        active: active_after,
        messages_sent: sent,
        halt: false,
    };
    program.master(&mut mctx);
    let master_halt = mctx.halt;
    *snapshot = merged;

    let reason = if master_halt {
        Some(HaltReason::Master)
    } else if active_after == 0 && sent == 0 {
        Some(HaltReason::AllHalted)
    } else {
        None
    };
    (step, reason)
}

/// Whether the load-time broadcast fan-out index should be built: the lane
/// must be enabled, and on the direct path vertex ids must fit beside
/// [`BROADCAST_TAG`]. The wire path carries the broadcast flag out of band
/// (sideband marks in memory, section flags on the wire), so it is exempt
/// from the id cap.
pub(crate) fn fanout_allowed(broadcast_fabric: bool, wire: bool, num_vertices: u64) -> bool {
    broadcast_fabric && (wire || num_vertices <= BROADCAST_TAG as u64)
}

/// Names why the broadcast lane is in its current state — the pure core of
/// [`Engine::lane_status`]. Precedence when several causes hold: a disabled
/// config wins over an oversized id space (the lane would not have been
/// built regardless of size), and `IdSpaceExceeded` is only reported on the
/// direct path — a serialising transport has no id cap, so a closed lane
/// there can only mean a mutation.
pub(crate) fn derive_lane_status(
    lane_open: bool,
    broadcast_fabric: bool,
    wire: bool,
    num_vertices: u64,
) -> LaneStatus {
    if lane_open {
        LaneStatus::Open
    } else if !broadcast_fabric {
        LaneStatus::DisabledByConfig
    } else if !wire && num_vertices > BROADCAST_TAG as u64 {
        LaneStatus::IdSpaceExceeded
    } else {
        LaneStatus::ClosedByMutation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIG: u64 = 3_000_000_000; // > 2^31 vertices

    #[test]
    fn fanout_gate_caps_only_the_direct_path() {
        assert!(fanout_allowed(true, false, 1_000));
        assert!(!fanout_allowed(true, false, BIG));
        // The wire path keeps the lane at any size …
        assert!(fanout_allowed(true, true, BIG));
        assert!(fanout_allowed(true, true, u64::MAX));
        // … but never resurrects a disabled fabric.
        assert!(!fanout_allowed(false, true, 1_000));
    }

    #[test]
    fn lane_status_is_transport_aware() {
        assert_eq!(derive_lane_status(true, true, false, BIG), LaneStatus::Open);
        assert_eq!(derive_lane_status(false, false, false, 10), LaneStatus::DisabledByConfig);
        // Direct path, oversized id space: the cap is real.
        assert_eq!(derive_lane_status(false, true, false, BIG), LaneStatus::IdSpaceExceeded);
        // Wire path: no id cap, so a closed lane means a mutation — the
        // old code misreported this as IdSpaceExceeded.
        assert_eq!(derive_lane_status(false, true, true, BIG), LaneStatus::ClosedByMutation);
        assert_eq!(derive_lane_status(false, true, false, 10), LaneStatus::ClosedByMutation);
    }
}
