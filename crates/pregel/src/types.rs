//! Shared type bounds and identifiers.

/// Identifier of a logical worker (a "machine" in Giraph terms).
pub type WorkerId = u16;

/// The all-to-all message exchange: a dense `W × W` matrix of outbox
/// buffers, indexed `src * W + dst`. Cell `(i, j)` is published (swapped in)
/// by worker `i` at the end of its compute phase and drained by worker `j`
/// during its delivery phase; the two phases are separated by the superstep
/// barrier, so every lock is uncontended. Draining leaves the buffer empty
/// but keeps its capacity, and the publish swap hands that capacity back to
/// the sender — a double buffer per cell, so the steady state allocates
/// nothing.
pub type OutboxGrid<M> = Vec<std::sync::Mutex<Vec<(spinner_graph::VertexId, M)>>>;

/// Bound for all user data carried by the engine (vertex values, edge
/// values, messages, global state). Auto-implemented.
pub trait Value: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Value for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_value<T: Value>() {}

    #[test]
    fn common_types_are_values() {
        assert_value::<u64>();
        assert_value::<f64>();
        assert_value::<(u32, u32)>();
        assert_value::<Vec<i64>>();
        assert_value::<()>();
    }
}
