//! Shared type bounds and identifiers.

/// Identifier of a logical worker (a "machine" in Giraph terms).
pub type WorkerId = u16;

/// Messages bound for one worker, grouped as `(sender, addressed batch)`
/// pairs; the engine transposes per-worker outboxes into one of these per
/// destination before the delivery phase.
pub type Mailbag<M> = Vec<(WorkerId, Vec<(spinner_graph::VertexId, M)>)>;

/// Bound for all user data carried by the engine (vertex values, edge
/// values, messages, global state). Auto-implemented.
pub trait Value: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Value for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_value<T: Value>() {}

    #[test]
    fn common_types_are_values() {
        assert_value::<u64>();
        assert_value::<f64>();
        assert_value::<(u32, u32)>();
        assert_value::<Vec<i64>>();
        assert_value::<()>();
    }
}
