//! Shared type bounds and identifiers.

/// Identifier of a logical worker (a "machine" in Giraph terms).
pub type WorkerId = u16;

/// The all-to-all message exchange: a dense `W × W` matrix of outbox
/// buffers, indexed `src * W + dst`. Cell `(i, j)` is published (swapped in)
/// by worker `i` at the end of its compute phase and drained by worker `j`
/// during its delivery phase; the two phases are separated by the superstep
/// barrier, so every lock is uncontended. Draining leaves the buffer empty
/// but keeps its capacity, and the publish swap hands that capacity back to
/// the sender — a double buffer per cell, so the steady state allocates
/// nothing.
///
/// A record's vertex id is either a plain destination (unicast) or, with
/// [`BROADCAST_TAG`] set, the *sender* of a deduplicated broadcast that the
/// receiving worker expands through its fan-out index at delivery time.
pub type OutboxGrid<M> = Vec<std::sync::Mutex<Vec<(spinner_graph::VertexId, M)>>>;

/// Tag bit marking a grid/fast-path record as a **broadcast** entry: the id
/// field then carries the *sending* vertex (`id & !BROADCAST_TAG`) instead
/// of a destination, and the receiving worker fans the message out to every
/// local vertex in the sender's adjacency. Reusing the id's top bit keeps
/// broadcast and unicast records interleaved in one buffer — which is what
/// preserves per-vertex delivery order exactly — at the price of capping
/// vertex ids at 2³¹ when the broadcast lane is enabled (the engine checks
/// at load time and falls back to unicast beyond that).
pub const BROADCAST_TAG: spinner_graph::VertexId = 1 << 31;

/// Sentinel in a broadcast plan's `single` track: the sender has more than
/// one neighbour on that destination worker, so a tagged broadcast record
/// is shipped. Any other value is the lone neighbour's id, shipped as a
/// plain unicast record — one record either way, but the unicast skips the
/// receiver's fan-out lookup.
pub(crate) const BROADCAST_MULTI: spinner_graph::VertexId = spinner_graph::VertexId::MAX;

/// Bound for all user data carried by the engine (vertex values, edge
/// values, messages, global state). Auto-implemented.
pub trait Value: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Value for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_value<T: Value>() {}

    #[test]
    fn common_types_are_values() {
        assert_value::<u64>();
        assert_value::<f64>();
        assert_value::<(u32, u32)>();
        assert_value::<Vec<i64>>();
        assert_value::<()>();
    }
}
