//! Seq/ack/retransmit reliability layer over any [`Transport`].
//!
//! [`ReliableTransport`] makes an unreliable frame mover (a chaos-wrapped
//! ring today, a lossy socket tomorrow) look perfect to the engine:
//! frames arrive exactly once, in publish order, or the lane fails with a
//! typed [`TransportError`] — never a hang, never silent divergence.
//!
//! ## Protocol
//!
//! Each ordered `(src, dst)` lane carries an independent sequence space.
//! `publish` appends a 12-byte trailer — `[seq u64 LE][crc32 LE]`, the CRC
//! covering payload *and* sequence so trailer corruption is caught — and
//! retains a copy of the sealed frame in a bounded retransmit buffer
//! (pooled buffers; steady state allocates nothing). `take` validates the
//! trailer, dedups against the cumulative ack, stashes early frames in a
//! reorder window, and strips the trailer before handing the frame up.
//!
//! Because both lane endpoints live in this one structure, the receiver
//! *knows* how many frames the sender sealed (`next_seq`). A drained inner
//! transport with `ack < next_seq` is therefore a detected gap, not a
//! silent loss: the receiver re-publishes the first unacked frame from the
//! retained buffer, with exponential backoff, up to
//! [`RetryConfig::max_retransmits`] attempts and bounded overall by
//! [`RetryConfig::take_deadline`]. A corrupt frame is rejected and counts
//! as a NACK — the gap it leaves triggers the same retransmit path instead
//! of aborting the run. When the budget or deadline is exhausted the lane
//! is marked [`LaneHealth::Dead`] and every subsequent `take` fails fast
//! with a typed error, which the engine surfaces as
//! `HaltReason::TransportFailed` and the streaming session escalates into
//! worker-loss recovery.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::codec::crc32;
use crate::transport::{LaneHealth, RetryConfig, Transport, TransportError, TransportStats};
use crate::wire::MIN_FRAME_LEN;

/// Bytes the reliability layer appends to every frame:
/// `[seq u64 LE][crc32 LE]`.
pub const RELIABLE_TRAILER_LEN: usize = 12;

/// Per-lane protocol state. One struct holds both endpoints: the sender
/// side (`next_seq`, retransmit buffer) and the receiver side (cumulative
/// `ack`, reorder stash, retry bookkeeping). The engine's superstep
/// barrier separates the phases that touch each side, so the single mutex
/// is uncontended.
#[derive(Debug, Default)]
struct Lane {
    /// Sender: sequence number the next published frame gets.
    next_seq: u64,
    /// Sender: sealed copies of unacked frames, oldest first.
    sent: VecDeque<(u64, Vec<u8>)>,
    /// Receiver: next sequence number to deliver (cumulative ack).
    ack: u64,
    /// Receiver: early frames parked until their turn.
    stash: BTreeMap<u64, Vec<u8>>,
    /// Receiver: consecutive recovery attempts for the current gap.
    attempts: u32,
    /// Pooled buffers for retained copies and retransmissions.
    pool: Vec<Vec<u8>>,
    health: LaneHealth,
    stats: TransportStats,
}

impl Lane {
    fn degrade(&mut self) {
        if self.health == LaneHealth::Healthy {
            self.health = LaneHealth::Degraded;
        }
    }

    /// Returns acked retained frames to the pool.
    fn prune_sent(&mut self) {
        while self.sent.front().is_some_and(|(seq, _)| *seq < self.ack) {
            let (_, buf) = self.sent.pop_front().expect("front checked");
            self.pool.push(buf);
        }
    }
}

/// The reliability decorator — see the module docs for the protocol.
#[derive(Debug)]
pub struct ReliableTransport<T: Transport> {
    inner: T,
    workers: usize,
    cfg: RetryConfig,
    lanes: Vec<Mutex<Lane>>,
}

impl<T: Transport> ReliableTransport<T> {
    /// Wraps `inner` (connecting `workers` workers) with the given retry
    /// budgets.
    pub fn new(inner: T, workers: usize, cfg: RetryConfig) -> Self {
        let lanes = (0..workers * workers).map(|_| Mutex::new(Lane::default())).collect();
        Self { inner, workers, cfg, lanes }
    }

    fn lane(&self, src: usize, dst: usize) -> MutexGuard<'_, Lane> {
        debug_assert!(src < self.workers && dst < self.workers);
        self.lanes[src * self.workers + dst].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Validates a raw frame's reliability trailer and returns its
    /// sequence number; `None` means corrupt (bad length or CRC).
    fn parse_seq(frame: &[u8]) -> Option<u64> {
        if frame.len() < MIN_FRAME_LEN + RELIABLE_TRAILER_LEN {
            return None;
        }
        let (body, crc_bytes) = frame.split_at(frame.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().ok()?);
        if crc32(body) != stored {
            return None;
        }
        let seq_bytes: [u8; 8] = body[body.len() - 8..].try_into().ok()?;
        Some(u64::from_le_bytes(seq_bytes))
    }

    /// Strips the trailer, advances the ack, and releases acked retained
    /// buffers.
    fn deliver(lane: &mut Lane, mut frame: Vec<u8>) -> Vec<u8> {
        frame.truncate(frame.len() - RELIABLE_TRAILER_LEN);
        lane.ack += 1;
        lane.attempts = 0;
        lane.prune_sent();
        frame
    }
}

impl<T: Transport> Transport for ReliableTransport<T> {
    fn begin(&self, src: usize, dst: usize) -> Vec<u8> {
        self.inner.begin(src, dst)
    }

    fn publish(
        &self,
        src: usize,
        dst: usize,
        mut frame: Vec<u8>,
    ) -> Result<(), TransportError> {
        let mut lane = self.lane(src, dst);
        let seq = lane.next_seq;
        lane.next_seq += 1;
        frame.extend_from_slice(&seq.to_le_bytes());
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        let mut copy = lane.pool.pop().unwrap_or_default();
        copy.clear();
        copy.extend_from_slice(&frame);
        lane.sent.push_back((seq, copy));
        lane.prune_sent();
        self.inner.publish(src, dst, frame)
    }

    fn take(&self, src: usize, dst: usize) -> Result<Option<Vec<u8>>, TransportError> {
        let mut lane = self.lane(src, dst);
        if lane.health == LaneHealth::Dead {
            return Err(TransportError::LaneDead { src, dst });
        }
        let deadline = Instant::now() + self.cfg.take_deadline;
        loop {
            // In-order frame already parked in the reorder window?
            let want = lane.ack;
            if let Some(frame) = lane.stash.remove(&want) {
                return Ok(Some(Self::deliver(&mut lane, frame)));
            }
            match self.inner.take(src, dst)? {
                Some(raw) => match Self::parse_seq(&raw) {
                    None => {
                        // Corrupt: reject and treat as a NACK — the gap it
                        // leaves drives the retransmit path below.
                        lane.stats.nacks += 1;
                        lane.degrade();
                        self.inner.recycle(src, dst, raw);
                    }
                    Some(seq) if seq < lane.ack => {
                        lane.stats.duplicates_dropped += 1;
                        self.inner.recycle(src, dst, raw);
                    }
                    Some(seq) if seq == lane.ack => {
                        return Ok(Some(Self::deliver(&mut lane, raw)));
                    }
                    Some(seq) if seq < lane.next_seq => {
                        if lane.stash.contains_key(&seq) {
                            lane.stats.duplicates_dropped += 1;
                            self.inner.recycle(src, dst, raw);
                        } else {
                            lane.stats.reordered += 1;
                            lane.degrade();
                            lane.stash.insert(seq, raw);
                        }
                    }
                    Some(_) => {
                        // A sequence number the sender never issued: the
                        // trailer survived a CRC check by accident or the
                        // frame predates a reset. Reject like corruption.
                        lane.stats.nacks += 1;
                        lane.degrade();
                        self.inner.recycle(src, dst, raw);
                    }
                },
                None => {
                    if lane.ack == lane.next_seq {
                        // Drained and consistent: every sealed frame was
                        // delivered.
                        lane.attempts = 0;
                        return Ok(None);
                    }
                    // Detected gap: the sender sealed frames the receiver
                    // never saw. Recover from the retained buffer.
                    if lane.attempts >= self.cfg.max_retransmits {
                        lane.health = LaneHealth::Dead;
                        return Err(TransportError::LaneDead { src, dst });
                    }
                    if Instant::now() >= deadline {
                        lane.health = LaneHealth::Dead;
                        return Err(TransportError::Timeout { src, dst });
                    }
                    if !self.cfg.backoff_base.is_zero() {
                        let shift = lane.attempts.min(10);
                        std::thread::sleep(self.cfg.backoff_base * (1u32 << shift));
                    }
                    lane.degrade();
                    lane.attempts += 1;
                    lane.stats.retransmits += 1;
                    let want = lane.ack;
                    let Some(pos) = lane.sent.iter().position(|(seq, _)| *seq == want) else {
                        // The gap frame is no longer retained — cannot
                        // recover (should be unreachable: pruning only
                        // drops acked frames).
                        lane.health = LaneHealth::Dead;
                        return Err(TransportError::LaneDead { src, dst });
                    };
                    let mut copy = lane.pool.pop().unwrap_or_default();
                    copy.clear();
                    copy.extend_from_slice(&lane.sent[pos].1);
                    self.inner.publish(src, dst, copy)?;
                }
            }
        }
    }

    fn recycle(&self, src: usize, dst: usize, frame: Vec<u8>) {
        self.inner.recycle(src, dst, frame)
    }

    fn reset(&self) {
        for src in 0..self.workers {
            for dst in 0..self.workers {
                let mut lane = self.lane(src, dst);
                while let Some((_, buf)) = lane.sent.pop_front() {
                    lane.pool.push(buf);
                }
                while let Some((_, buf)) = lane.stash.pop_first() {
                    lane.pool.push(buf);
                }
                lane.next_seq = 0;
                lane.ack = 0;
                lane.attempts = 0;
                lane.health = LaneHealth::Healthy;
                // Cumulative stats survive: callers attribute activity by
                // diffing snapshots, so the clock must never rewind.
            }
        }
        self.inner.reset();
        // Drain frames stranded in the inner transport by an aborted run
        // (a reset inner may or may not have cleared them itself).
        for src in 0..self.workers {
            for dst in 0..self.workers {
                while let Ok(Some(frame)) = self.inner.take(src, dst) {
                    self.inner.recycle(src, dst, frame);
                }
            }
        }
    }

    fn recv_stats(&self, dst: usize) -> TransportStats {
        let mut total = TransportStats::default();
        for src in 0..self.workers {
            total.add(&self.lane(src, dst).stats);
        }
        total
    }

    fn lane_health(&self, src: usize, dst: usize) -> LaneHealth {
        self.lane(src, dst).health
    }

    fn health_counts(&self) -> (u64, u64) {
        let mut degraded = 0;
        let mut dead = 0;
        for lane in &self.lanes {
            match lane.lock().unwrap_or_else(|p| p.into_inner()).health {
                LaneHealth::Healthy => {}
                LaneHealth::Degraded => degraded += 1,
                LaneHealth::Dead => dead += 1,
            }
        }
        (degraded, dead)
    }

    fn chaos_counts(&self) -> (u64, u64) {
        self.inner.chaos_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultyTransport, TransportFault, TransportFaultPlan};
    use crate::transport::RingTransport;
    use std::time::Duration;

    fn quick_cfg() -> RetryConfig {
        RetryConfig { backoff_base: Duration::ZERO, ..RetryConfig::default() }
    }

    fn reliable_over(
        plan: TransportFaultPlan,
    ) -> ReliableTransport<FaultyTransport<RingTransport>> {
        ReliableTransport::new(
            FaultyTransport::new(RingTransport::new(3), 3, plan),
            3,
            quick_cfg(),
        )
    }

    /// A payload long enough to satisfy the minimum frame length the
    /// trailer check expects under the reliability layer.
    fn payload(tag: u8) -> Vec<u8> {
        let mut p = vec![tag; MIN_FRAME_LEN];
        p[0] = tag;
        p
    }

    #[test]
    fn clean_lane_round_trips_and_strips_trailer() {
        let t = reliable_over(TransportFaultPlan::new());
        t.publish(0, 1, payload(1)).unwrap();
        t.publish(0, 1, payload(2)).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(payload(1)));
        assert_eq!(t.take(0, 1).unwrap(), Some(payload(2)));
        assert_eq!(t.take(0, 1).unwrap(), None);
        assert_eq!(t.lane_health(0, 1), LaneHealth::Healthy);
        assert_eq!(t.recv_stats(1), TransportStats::default());
    }

    #[test]
    fn dropped_frame_is_retransmitted() {
        let t = reliable_over(TransportFaultPlan::new().fail(0, 1, 0, TransportFault::Drop));
        t.publish(0, 1, payload(1)).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(payload(1)));
        assert!(t.recv_stats(1).retransmits >= 1);
        assert_eq!(t.lane_health(0, 1), LaneHealth::Degraded);
        assert_eq!(t.health_counts(), (1, 0));
    }

    #[test]
    fn duplicate_frame_is_delivered_once() {
        let t =
            reliable_over(TransportFaultPlan::new().fail(0, 1, 0, TransportFault::Duplicate));
        t.publish(0, 1, payload(1)).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(payload(1)));
        assert_eq!(t.take(0, 1).unwrap(), None);
        assert_eq!(t.recv_stats(1).duplicates_dropped, 1);
    }

    #[test]
    fn reordered_frames_are_delivered_in_sequence() {
        let t = reliable_over(TransportFaultPlan::new().fail(
            0,
            1,
            0,
            TransportFault::Reorder { window: 2 },
        ));
        t.publish(0, 1, payload(1)).unwrap();
        t.publish(0, 1, payload(2)).unwrap();
        t.publish(0, 1, payload(3)).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(payload(1)));
        assert_eq!(t.take(0, 1).unwrap(), Some(payload(2)));
        assert_eq!(t.take(0, 1).unwrap(), Some(payload(3)));
        assert!(t.recv_stats(1).reordered >= 1);
    }

    #[test]
    fn corrupt_frame_is_nacked_and_recovered() {
        for fault in [TransportFault::FlipBit { bit: 13 }, TransportFault::Torn { keep: 5 }] {
            let t = reliable_over(TransportFaultPlan::new().fail(0, 1, 0, fault));
            t.publish(0, 1, payload(9)).unwrap();
            assert_eq!(
                t.take(0, 1).unwrap(),
                Some(payload(9)),
                "fault {fault:?} must be masked"
            );
            let stats = t.recv_stats(1);
            assert!(stats.nacks >= 1, "fault {fault:?} must be rejected, not decoded");
            assert!(stats.retransmits >= 1);
        }
    }

    #[test]
    fn delayed_frame_is_recovered_without_divergence() {
        let t = reliable_over(TransportFaultPlan::new().fail(
            0,
            1,
            0,
            TransportFault::Delay { ticks: 2 },
        ));
        t.publish(0, 1, payload(4)).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(payload(4)));
        assert_eq!(t.take(0, 1).unwrap(), None, "late original must dedup, not redeliver");
    }

    #[test]
    fn stalled_lane_dies_with_typed_error() {
        let t = reliable_over(TransportFaultPlan::new().stall_at(0, 1, 0));
        t.publish(0, 1, payload(1)).unwrap();
        assert_eq!(t.take(0, 1), Err(TransportError::LaneDead { src: 0, dst: 1 }));
        assert_eq!(t.lane_health(0, 1), LaneHealth::Dead);
        // Dead lanes fail fast on every subsequent take.
        assert_eq!(t.take(0, 1), Err(TransportError::LaneDead { src: 0, dst: 1 }));
        assert_eq!(t.health_counts(), (0, 1));
    }

    #[test]
    fn deadline_bounds_a_stalled_take() {
        let cfg = RetryConfig {
            max_retransmits: u32::MAX,
            backoff_base: Duration::from_micros(50),
            take_deadline: Duration::from_millis(50),
            ..RetryConfig::default()
        };
        let plan = TransportFaultPlan::new().stall_at(0, 1, 0);
        let t = ReliableTransport::new(
            FaultyTransport::new(RingTransport::new(2), 2, plan),
            2,
            cfg,
        );
        t.publish(0, 1, payload(1)).unwrap();
        let start = Instant::now();
        assert_eq!(t.take(0, 1), Err(TransportError::Timeout { src: 0, dst: 1 }));
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "an unbounded retry budget must still respect the take deadline"
        );
    }

    #[test]
    fn reset_revives_a_dead_lane_and_keeps_buffers_pooled() {
        let t = reliable_over(TransportFaultPlan::new().stall_at(0, 1, 0));
        t.publish(0, 1, payload(1)).unwrap();
        assert!(t.take(0, 1).is_err());
        let stats_before = t.recv_stats(1);
        t.reset();
        assert_eq!(t.lane_health(0, 1), LaneHealth::Healthy);
        assert_eq!(t.recv_stats(1), stats_before, "cumulative stats survive reset");
        t.publish(0, 1, payload(2)).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(payload(2)));
    }

    #[test]
    fn steady_state_publishing_reuses_pooled_buffers() {
        let t = reliable_over(TransportFaultPlan::new());
        // Warm-up: establish pools.
        for round in 0..3u8 {
            t.publish(0, 1, payload(round)).unwrap();
            let frame = t.take(0, 1).unwrap().expect("published");
            t.recycle(0, 1, frame);
        }
        // Steady state: recycled buffer capacity must survive the full
        // begin -> publish(+trailer) -> take(strip) -> recycle cycle.
        let mut frame = t.begin(0, 1);
        assert!(frame.capacity() >= MIN_FRAME_LEN + RELIABLE_TRAILER_LEN);
        frame.extend_from_slice(&payload(9));
        let cap = frame.capacity();
        t.publish(0, 1, frame).unwrap();
        let frame = t.take(0, 1).unwrap().expect("published");
        assert_eq!(frame.capacity(), cap, "trailer strip must preserve capacity");
    }
}
