//! A Pregel/Giraph-style BSP graph-processing engine.
//!
//! This crate is the substrate the Spinner paper builds on: the paper
//! implements its partitioner as a Giraph program, so we implement the
//! Giraph/Pregel primitives the algorithm needs, from scratch:
//!
//! - **Supersteps** with synchronous message delivery (messages sent in
//!   superstep `s` are visible in superstep `s + 1`).
//! - **Vertex programs** ([`Program::compute`]) with vote-to-halt semantics
//!   and message-triggered reactivation.
//! - **Aggregators** (commutative/associative global reductions, optionally
//!   *persistent* across supersteps) mirroring Giraph's sharded aggregators.
//! - **Master compute** ([`Program::master`]) running between supersteps,
//!   able to read aggregators, update a broadcast global state, and halt.
//! - **Worker-local state** ([`Program::WorkerState`]) shared by all vertices
//!   hosted on the same logical worker within a superstep — the feature
//!   Spinner uses for its asynchronous per-worker load counters (§IV-A4).
//! - **Graph mutation** (edge additions applied at the superstep barrier),
//!   used by Spinner's NeighborPropagation/NeighborDiscovery conversion.
//!
//! # Logical workers vs threads
//!
//! The engine hosts `L` *logical workers* (the unit Giraph calls a worker — a
//! cluster machine) executed by up to `T` OS threads. All worker-scoped
//! semantics (per-worker state, local vs remote message accounting,
//! per-worker timings) bind to logical workers, so a 256-worker cluster can
//! be emulated faithfully on a handful of cores; the [`sim`] module turns
//! per-worker message/compute counts into simulated cluster superstep times
//! through an explicit cost model.
//!
//! # Message fabric
//!
//! Messages move through flat, capacity-reusing buffers rather than
//! per-vertex queues: sends land in per-destination outboxes that are
//! swapped into a shared all-to-all grid ([`types::OutboxGrid`]) at the end
//! of the compute phase; each worker drains its own grid column during
//! delivery and rebuilds a flat, epoch-stamped inbox
//! (`inbox_start`/`inbox_len`/`msgs`) touching only that superstep's
//! recipients; the next compute phase reads it as one slice per vertex.
//! Compute walks each worker's maintained **active list** (the non-halted
//! vertices) rather than its whole vertex range, so superstep cost scales
//! with the vertices that have work. With more than one thread, a
//! persistent pool created once per [`Engine::run`] drives the phases
//! through a barrier protocol (no per-superstep thread spawns), claiming
//! workers through atomic tokens so idle threads steal from skewed ones
//! (see [`engine::EngineConfig::work_stealing`]).
//! Steady-state supersteps perform no heap allocation on the message path;
//! [`WorkerMetrics::fabric_reallocs`] counts (and tests pin) any buffer
//! growth.
//!
//! Same-payload sends to a vertex's whole adjacency — the dominant pattern
//! in announce-style programs — can take the **broadcast lane**
//! ([`Mailer::broadcast`]): one deduplicated record per destination worker,
//! expanded through a load-time fan-out index at delivery into exactly the
//! per-edge positions, so results stay bit-identical while cross-worker
//! record traffic drops from O(cut edges) to O(distinct (sender, worker)
//! pairs). See [`engine::EngineConfig::broadcast_fabric`].
//!
//! # Determinism
//!
//! Engine runs are bit-for-bit deterministic for a given seed and
//! configuration, *independent of the thread count*: vertex programs draw
//! randomness from per-`(seed, vertex, superstep)` streams and aggregator
//! merges happen in worker order.

pub mod aggregate;
pub mod algorithms;
pub mod codec;
pub mod context;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod placement;
pub mod program;
pub mod reliable;
pub mod sim;
pub mod transport;
pub mod types;
pub mod wire;
pub mod worker;

pub use aggregate::{AggOp, AggValue, AggregatorSpec};
pub use context::{AggCtx, Edges, Mailer, VertexContext};
pub use engine::{Engine, EngineConfig, HaltReason, LaneStatus, ReplaceStats, RunSummary};
pub use fault::{FaultyTransport, TransportFault, TransportFaultPlan};
pub use metrics::{SuperstepMetrics, WorkerMetrics};
pub use placement::Placement;
pub use program::{MasterContext, Program};
pub use reliable::ReliableTransport;
pub use sim::CostModel;
pub use transport::{
    LaneHealth, RetryConfig, RingTransport, Transport, TransportError, TransportKind,
    TransportStats,
};
pub use types::{Value, WorkerId};
pub use wire::{WireError, WireFormat, WirePayload, WireRecord};
