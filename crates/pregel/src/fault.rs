//! Scripted frame-level fault injection for transports.
//!
//! Mirrors the serving store's `FaultyStorage` discipline at the message
//! fabric: a [`TransportFaultPlan`] scripts exactly which frame on which
//! `(sender, receiver)` lane misbehaves and how, keyed by the lane's
//! monotonically increasing *publish index* (the transport-level analogue
//! of the storage layer's op index). [`FaultyTransport`] wraps any inner
//! [`Transport`] and consults the plan on every publish.
//!
//! Each scripted fault fires exactly once and is then consumed — so an
//! escalation loop that re-runs a window after a fault-induced abort makes
//! progress (a finite plan cannot kill the same run forever), and a seeded
//! plan replays bit-identically. The chaos layer itself never allocates in
//! steady state: swallowed and duplicated frames ride the inner transport's
//! recycling pools plus a small per-lane free list.
//!
//! Faults come in two severities:
//!
//! - **Recoverable** ([`TransportFault::Drop`], `Duplicate`,
//!   `Reorder`, `FlipBit`, `Torn`, `Delay`): the reliability layer
//!   ([`crate::reliable::ReliableTransport`]) must mask them completely —
//!   the run's results stay bit-identical to a fault-free run.
//! - **Lane-killing** ([`TransportFault::Stall`]): the sender goes silent
//!   for the rest of the run. No retransmit can help (the chaos layer sits
//!   *below* the retained-buffer path, swallowing retransmissions too), so
//!   the lane exhausts its budget, dies, and the caller escalates into
//!   worker-loss recovery.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::transport::{Transport, TransportError, TransportStats};

/// One scripted misbehaviour applied to a single published frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// The frame vanishes in flight.
    Drop,
    /// The frame is delivered twice back to back.
    Duplicate,
    /// The frame is held until `window` further frames have been published
    /// on the lane (or the lane drains empty), arriving out of order.
    Reorder {
        /// How many subsequent publishes overtake the held frame.
        window: u32,
    },
    /// One bit of the frame is flipped in flight (`bit` is taken modulo
    /// the frame's bit length).
    FlipBit {
        /// Absolute bit position to flip, pre-modulo.
        bit: u64,
    },
    /// The frame is truncated to at most `keep` bytes — a torn write.
    Torn {
        /// Bytes of the frame that survive.
        keep: usize,
    },
    /// The frame is held for `ticks` receive polls on the lane before it
    /// arrives.
    Delay {
        /// Receive polls to wait out.
        ticks: u32,
    },
    /// The sender goes permanently silent on this lane: this frame and
    /// every later one (including retransmissions) are swallowed. The only
    /// fault the reliability layer cannot mask — it escalates to lane
    /// death and worker-loss recovery.
    Stall,
}

impl TransportFault {
    /// Whether the reliability layer is expected to mask this fault
    /// completely (everything except [`TransportFault::Stall`]).
    pub fn is_recoverable(&self) -> bool {
        !matches!(self, TransportFault::Stall)
    }
}

/// The same avalanche mix the serving fault plan uses for seeded chaos.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A script of transport faults keyed by `(sender, receiver, frame index)`,
/// where the frame index counts publishes on that ordered lane over the
/// transport's lifetime (resets do *not* rewind it — consumed entries stay
/// consumed, which is what makes recovery loops terminate).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportFaultPlan {
    faults: BTreeMap<(usize, usize, u64), TransportFault>,
}

impl TransportFaultPlan {
    /// An empty plan: every frame flows clean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scripts `fault` for the `frame`-th publish on the `src -> dst`
    /// lane (0-based). Builder-style.
    pub fn fail(mut self, src: usize, dst: usize, frame: u64, fault: TransportFault) -> Self {
        self.faults.insert((src, dst, frame), fault);
        self
    }

    /// Scripts a permanent [`TransportFault::Stall`] starting at the
    /// `frame`-th publish on the `src -> dst` lane.
    pub fn stall_at(self, src: usize, dst: usize, frame: u64) -> Self {
        self.fail(src, dst, frame, TransportFault::Stall)
    }

    /// A deterministic pseudo-random plan of *recoverable* faults over a
    /// `workers × workers` lane grid and the first `frames` publishes per
    /// lane. `density` is the per-frame fault probability in `[0, 1]`.
    /// Never emits [`TransportFault::Stall`] — seeded sweeps assert
    /// bit-identical recovery, and a stall makes that impossible by design.
    pub fn seeded(seed: u64, workers: usize, frames: u64, density: f64) -> Self {
        let density = density.clamp(0.0, 1.0);
        let mut faults = BTreeMap::new();
        for src in 0..workers {
            for dst in 0..workers {
                if src == dst {
                    continue;
                }
                for frame in 0..frames {
                    let key = (src as u64) << 40 ^ (dst as u64) << 20 ^ frame;
                    let h = splitmix64(seed ^ splitmix64(key));
                    let roll = (h >> 11) as f64 / (1u64 << 53) as f64;
                    if roll >= density {
                        continue;
                    }
                    let pick = splitmix64(h);
                    let fault = match pick % 6 {
                        0 => TransportFault::Drop,
                        1 => TransportFault::Duplicate,
                        2 => TransportFault::Reorder { window: 1 + (pick >> 8) as u32 % 3 },
                        3 => TransportFault::FlipBit { bit: pick >> 8 },
                        4 => TransportFault::Torn { keep: (pick >> 8) as usize % 32 },
                        _ => TransportFault::Delay { ticks: 1 + (pick >> 8) as u32 % 3 },
                    };
                    faults.insert((src, dst, frame), fault);
                }
            }
        }
        Self { faults }
    }

    /// Scripted faults not yet consumed.
    pub fn remaining(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan scripts any lane-killing fault.
    pub fn has_stall(&self) -> bool {
        self.faults.values().any(|f| !f.is_recoverable())
    }

    /// Consumes and returns the fault scripted for the `frame`-th publish
    /// on `src -> dst`, if any.
    pub fn take(&mut self, src: usize, dst: usize, frame: u64) -> Option<TransportFault> {
        self.faults.remove(&(src, dst, frame))
    }
}

/// How a held frame is released back into the inner transport.
#[derive(Debug)]
enum Hold {
    /// Released after this many further publishes on the lane (or when the
    /// lane drains empty — a reorder must not starve the receiver).
    Reorder { publishes_left: u32 },
    /// Released after this many receive polls on the lane.
    Delay { ticks_left: u32 },
}

#[derive(Debug)]
struct HeldFrame {
    frame: Vec<u8>,
    hold: Hold,
}

/// Per-lane chaos state. `published` is the plan's frame-index clock; it
/// survives resets so plan coordinates are absolute over the transport's
/// lifetime.
#[derive(Debug, Default)]
struct ChaosLane {
    published: u64,
    stalled: bool,
    held: Vec<HeldFrame>,
    free: Vec<Vec<u8>>,
}

/// A [`Transport`] decorator that injects the faults scripted in a
/// [`TransportFaultPlan`] — see the module docs for semantics. Stacks
/// under [`crate::reliable::ReliableTransport`] so injected faults hit the
/// wire representation the reliability layer actually defends (sequence
/// trailer included).
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    workers: usize,
    plan: Mutex<TransportFaultPlan>,
    lanes: Vec<Mutex<ChaosLane>>,
    injected: AtomicU64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` (connecting `workers` workers) with the scripted
    /// `plan`.
    pub fn new(inner: T, workers: usize, plan: TransportFaultPlan) -> Self {
        let lanes = (0..workers * workers).map(|_| Mutex::new(ChaosLane::default())).collect();
        Self { inner, workers, plan: Mutex::new(plan), lanes, injected: AtomicU64::new(0) }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Scripted faults not yet consumed.
    pub fn remaining(&self) -> usize {
        self.plan.lock().unwrap_or_else(|p| p.into_inner()).remaining()
    }

    fn lane(&self, src: usize, dst: usize) -> MutexGuard<'_, ChaosLane> {
        debug_assert!(src < self.workers && dst < self.workers);
        self.lanes[src * self.workers + dst].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Counts down reorder holds after a publish on the lane and releases
    /// the ones that are due, in held order. `skip_last` exempts a hold the
    /// current publish itself just created — only *subsequent* publishes
    /// count toward its reorder window.
    fn release_due_publishes(
        &self,
        lane: &mut ChaosLane,
        src: usize,
        dst: usize,
        skip_last: bool,
    ) -> Result<(), TransportError> {
        let mut i = 0;
        // The just-created hold is always the last element; removals keep
        // relative order, so excluding the tail slot excludes exactly it.
        while i + usize::from(skip_last) < lane.held.len() {
            let due = match &mut lane.held[i].hold {
                Hold::Reorder { publishes_left } => {
                    *publishes_left = publishes_left.saturating_sub(1);
                    *publishes_left == 0
                }
                Hold::Delay { .. } => false,
            };
            if due {
                let held = lane.held.remove(i);
                self.inner.publish(src, dst, held.frame)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Counts down delay holds on a receive poll and releases the ones
    /// that are due, in held order.
    fn release_due_ticks(
        &self,
        lane: &mut ChaosLane,
        src: usize,
        dst: usize,
    ) -> Result<(), TransportError> {
        let mut i = 0;
        while i < lane.held.len() {
            let due = match &mut lane.held[i].hold {
                Hold::Delay { ticks_left } => {
                    *ticks_left = ticks_left.saturating_sub(1);
                    *ticks_left == 0
                }
                Hold::Reorder { .. } => false,
            };
            if due {
                let held = lane.held.remove(i);
                self.inner.publish(src, dst, held.frame)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Releases every reorder-held frame (the lane drained empty — holding
    /// longer would starve the receiver, not reorder it).
    fn flush_reorders(
        &self,
        lane: &mut ChaosLane,
        src: usize,
        dst: usize,
    ) -> Result<bool, TransportError> {
        let mut released = false;
        let mut i = 0;
        while i < lane.held.len() {
            if matches!(lane.held[i].hold, Hold::Reorder { .. }) {
                let held = lane.held.remove(i);
                self.inner.publish(src, dst, held.frame)?;
                released = true;
            } else {
                i += 1;
            }
        }
        Ok(released)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn begin(&self, src: usize, dst: usize) -> Vec<u8> {
        self.inner.begin(src, dst)
    }

    fn publish(
        &self,
        src: usize,
        dst: usize,
        mut frame: Vec<u8>,
    ) -> Result<(), TransportError> {
        let mut lane = self.lane(src, dst);
        let idx = lane.published;
        lane.published += 1;
        if lane.stalled {
            self.inner.recycle(src, dst, frame);
            return Ok(());
        }
        let fault = self.plan.lock().unwrap_or_else(|p| p.into_inner()).take(src, dst, idx);
        let mut newly_held = false;
        match fault {
            None => self.inner.publish(src, dst, frame)?,
            Some(fault) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                match fault {
                    TransportFault::Drop => self.inner.recycle(src, dst, frame),
                    TransportFault::Duplicate => {
                        let mut copy = lane.free.pop().unwrap_or_default();
                        copy.clear();
                        copy.extend_from_slice(&frame);
                        self.inner.publish(src, dst, frame)?;
                        self.inner.publish(src, dst, copy)?;
                    }
                    TransportFault::Reorder { window } => {
                        let hold = Hold::Reorder { publishes_left: window.max(1) };
                        lane.held.push(HeldFrame { frame, hold });
                        newly_held = true;
                    }
                    TransportFault::FlipBit { bit } => {
                        if !frame.is_empty() {
                            let b = (bit % (frame.len() as u64 * 8)) as usize;
                            frame[b / 8] ^= 1 << (b % 8);
                        }
                        self.inner.publish(src, dst, frame)?;
                    }
                    TransportFault::Torn { keep } => {
                        frame.truncate(keep.min(frame.len()));
                        self.inner.publish(src, dst, frame)?;
                    }
                    TransportFault::Delay { ticks } => {
                        let hold = Hold::Delay { ticks_left: ticks.max(1) };
                        lane.held.push(HeldFrame { frame, hold });
                    }
                    TransportFault::Stall => {
                        lane.stalled = true;
                        self.inner.recycle(src, dst, frame);
                    }
                }
            }
        }
        self.release_due_publishes(&mut lane, src, dst, newly_held)
    }

    fn take(&self, src: usize, dst: usize) -> Result<Option<Vec<u8>>, TransportError> {
        let mut lane = self.lane(src, dst);
        self.release_due_ticks(&mut lane, src, dst)?;
        if let Some(frame) = self.inner.take(src, dst)? {
            return Ok(Some(frame));
        }
        if self.flush_reorders(&mut lane, src, dst)? {
            return self.inner.take(src, dst);
        }
        Ok(None)
    }

    fn recycle(&self, src: usize, dst: usize, frame: Vec<u8>) {
        self.inner.recycle(src, dst, frame)
    }

    fn reset(&self) {
        // Held frames belong to the aborted run: their contents are stale,
        // so recycle the buffers instead of delivering them. Stall marks
        // clear (the replacement worker's lanes are fresh), but the plan
        // and publish clocks persist — consumed faults must stay consumed.
        for src in 0..self.workers {
            for dst in 0..self.workers {
                let mut lane = self.lane(src, dst);
                lane.stalled = false;
                while let Some(held) = lane.held.pop() {
                    self.inner.recycle(src, dst, held.frame);
                }
            }
        }
        self.inner.reset();
    }

    fn recv_stats(&self, dst: usize) -> TransportStats {
        self.inner.recv_stats(dst)
    }

    fn lane_health(&self, src: usize, dst: usize) -> crate::transport::LaneHealth {
        self.inner.lane_health(src, dst)
    }

    fn health_counts(&self) -> (u64, u64) {
        self.inner.health_counts()
    }

    fn chaos_counts(&self) -> (u64, u64) {
        (self.injected(), self.remaining() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::RingTransport;

    fn chaos(plan: TransportFaultPlan) -> FaultyTransport<RingTransport> {
        FaultyTransport::new(RingTransport::new(3), 3, plan)
    }

    #[test]
    fn clean_plan_passes_frames_through() {
        let t = chaos(TransportFaultPlan::new());
        t.publish(0, 1, vec![1, 2, 3]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(t.chaos_counts(), (0, 0));
    }

    #[test]
    fn drop_swallows_exactly_the_scripted_frame() {
        let t = chaos(TransportFaultPlan::new().fail(0, 1, 1, TransportFault::Drop));
        t.publish(0, 1, vec![1]).unwrap();
        t.publish(0, 1, vec![2]).unwrap();
        t.publish(0, 1, vec![3]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![1]));
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![3]));
        assert_eq!(t.take(0, 1).unwrap(), None);
        assert_eq!(t.injected(), 1);
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn duplicate_delivers_the_frame_twice() {
        let t = chaos(TransportFaultPlan::new().fail(0, 1, 0, TransportFault::Duplicate));
        t.publish(0, 1, vec![7]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![7]));
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![7]));
        assert_eq!(t.take(0, 1).unwrap(), None);
    }

    #[test]
    fn reorder_lets_later_frames_overtake() {
        let t = chaos(TransportFaultPlan::new().fail(
            0,
            1,
            0,
            TransportFault::Reorder { window: 2 },
        ));
        t.publish(0, 1, vec![1]).unwrap();
        t.publish(0, 1, vec![2]).unwrap();
        t.publish(0, 1, vec![3]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![2]));
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![3]));
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![1]));
    }

    #[test]
    fn reorder_flushes_rather_than_starves() {
        let t = chaos(TransportFaultPlan::new().fail(
            0,
            1,
            0,
            TransportFault::Reorder { window: 5 },
        ));
        t.publish(0, 1, vec![1]).unwrap();
        // No further publishes arrive: the held frame must still surface.
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![1]));
    }

    #[test]
    fn flip_bit_corrupts_in_flight() {
        let t =
            chaos(TransportFaultPlan::new().fail(0, 1, 0, TransportFault::FlipBit { bit: 0 }));
        t.publish(0, 1, vec![0b0000_0001]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![0b0000_0000]));
    }

    #[test]
    fn torn_truncates() {
        let t =
            chaos(TransportFaultPlan::new().fail(0, 1, 0, TransportFault::Torn { keep: 2 }));
        t.publish(0, 1, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![1, 2]));
    }

    #[test]
    fn delay_releases_after_ticks() {
        let t =
            chaos(TransportFaultPlan::new().fail(0, 1, 0, TransportFault::Delay { ticks: 2 }));
        t.publish(0, 1, vec![9]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), None, "tick 1: still held");
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![9]), "tick 2: released");
    }

    #[test]
    fn stall_silences_the_lane_permanently() {
        let t = chaos(TransportFaultPlan::new().stall_at(0, 1, 1));
        t.publish(0, 1, vec![1]).unwrap();
        t.publish(0, 1, vec![2]).unwrap();
        t.publish(0, 1, vec![3]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![1]));
        assert_eq!(t.take(0, 1).unwrap(), None);
        // Other lanes are unaffected.
        t.publish(2, 1, vec![8]).unwrap();
        assert_eq!(t.take(2, 1).unwrap(), Some(vec![8]));
    }

    #[test]
    fn reset_clears_stall_but_not_consumed_faults() {
        let t = chaos(TransportFaultPlan::new().stall_at(0, 1, 0));
        t.publish(0, 1, vec![1]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), None);
        t.reset();
        // The stall was consumed; after reset the lane flows again and the
        // publish clock keeps counting (no fault re-fires at index 0).
        t.publish(0, 1, vec![2]).unwrap();
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![2]));
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_recoverable() {
        let a = TransportFaultPlan::seeded(42, 4, 32, 0.1);
        let b = TransportFaultPlan::seeded(42, 4, 32, 0.1);
        assert_eq!(a, b);
        assert!(
            a.remaining() > 0,
            "density 0.1 over 12 lanes x 32 frames must script something"
        );
        assert!(!a.has_stall(), "seeded plans only script recoverable faults");
        let c = TransportFaultPlan::seeded(43, 4, 32, 0.1);
        assert_ne!(a, c, "seed must matter");
    }
}
