//! The per-vertex compute context.

use crate::aggregate::AggValue;
use crate::program::Program;
use crate::types::WorkerId;
use spinner_graph::rng::SplitMix64;
use spinner_graph::VertexId;

/// A buffered edge addition (applied at the superstep barrier).
#[derive(Debug, Clone)]
pub(crate) struct EdgeAddition<E> {
    pub local_src: u32,
    pub target: VertexId,
    pub value: E,
}

/// View over a vertex's adjacency: immutable targets, mutable edge values.
///
/// Targets are sorted, so [`Edges::index_of`] is a binary search — this is
/// how Spinner updates the cached neighbour label when a migration message
/// arrives.
pub struct Edges<'a, E> {
    /// Neighbour ids, sorted ascending.
    pub targets: &'a [VertexId],
    /// Edge values, parallel to `targets`.
    pub values: &'a mut [E],
}

impl<'a, E> Edges<'a, E> {
    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when the vertex has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Position of `target` in the adjacency, if present.
    #[inline]
    pub fn index_of(&self, target: VertexId) -> Option<usize> {
        self.targets.binary_search(&target).ok()
    }

    /// Iterates `(target, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &E)> {
        self.targets.iter().copied().zip(self.values.iter())
    }
}

/// Message-sending handle; routes to the destination worker's outbox and
/// keeps the local/remote traffic counters the evaluation relies on.
///
/// Remote sends are double-buffered against the engine's [`OutboxGrid`]: the
/// buffer a send pushes into was drained (capacity intact) by the receiving
/// worker two supersteps ago, so steady-state sends never allocate.
///
/// **Locality fast path**: a message addressed to a vertex on the *same*
/// worker never touches the grid — it appends straight into the worker's own
/// local queue, which the delivery phase folds into the staging chains at
/// the position the grid's diagonal cell used to occupy. No mutex, no
/// publish swap, and per-vertex message order is unchanged, so results stay
/// bit-identical while label-aligned placements turn most of the message
/// volume into lock-free appends.
///
/// **Broadcast lane**: [`Mailer::broadcast`] ships one *record* per
/// destination worker (plus one fast-path record) instead of one per edge —
/// the receiver expands it through its fan-out index — so the announce-to-
/// all-neighbours pattern costs `O(workers)` records per vertex instead of
/// `O(degree)`. Delivery expansion reproduces the per-edge send order
/// exactly, so results stay bit-identical to the unicast path (pinned by
/// the `fabric_grid` tests; the unicast arm stays available through
/// [`EngineConfig::broadcast_fabric`]).
///
/// [`OutboxGrid`]: crate::types::OutboxGrid
/// [`EngineConfig::broadcast_fabric`]: crate::engine::EngineConfig::broadcast_fabric
pub struct Mailer<'a, M> {
    pub(crate) outboxes: &'a mut [Vec<(VertexId, M)>],
    /// Sideband broadcast marks, parallel to `outboxes`: the positions of
    /// broadcast records within each outbox, maintained only in sideband
    /// mode (see `sideband`). Unused — and left empty — on the direct path.
    pub(crate) outbox_marks: &'a mut [Vec<u32>],
    /// The worker-local queue (fast path for `worker_of[target] == my_worker`).
    pub(crate) local: &'a mut Vec<(VertexId, M)>,
    /// Sideband broadcast marks for the worker-local queue.
    pub(crate) local_marks: &'a mut Vec<u32>,
    pub(crate) worker_of: &'a [WorkerId],
    pub(crate) my_worker: WorkerId,
    /// The sending vertex (tags its broadcast records).
    pub(crate) sender: VertexId,
    /// The sending vertex's full engine adjacency — the target set a
    /// broadcast implies, and the slice `send_to_all` compares against to
    /// recognise a full-adjacency send.
    pub(crate) adjacency: &'a [VertexId],
    /// Whether the broadcast lane may be used this superstep (config on,
    /// ids taggable, and no graph mutation has stalled the fan-out index).
    pub(crate) lane_open: bool,
    /// Sideband broadcast tagging (the wire path): broadcast records carry
    /// the *untagged* sender id and their queue positions are recorded in
    /// the marks vectors instead of stealing the id's top bit — which is
    /// what frees the wire path from the in-memory lane's 2³¹ id cap. The
    /// direct path keeps the tag-bit scheme (`false`).
    pub(crate) sideband: bool,
    /// The sender's broadcast plan, precomputed at load time: its
    /// adjacency's distinct destination workers in first-occurrence order
    /// (one fabric record each). Empty when the lane is closed.
    pub(crate) bcast_plan: &'a [WorkerId],
    /// Parallel to `bcast_plan`: [`BROADCAST_MULTI`] for a fanned-out
    /// record, or the lone neighbour's id where a plain unicast record is
    /// cheaper (see [`BROADCAST_MULTI`]).
    ///
    /// [`BROADCAST_MULTI`]: crate::types::BROADCAST_MULTI
    pub(crate) bcast_single: &'a [VertexId],
    /// Worker-local neighbours of the sender (the logical local deliveries
    /// one broadcast implies), precomputed at load time.
    pub(crate) bcast_local: u32,
    /// Remote neighbours of the sender (logical remote deliveries).
    pub(crate) bcast_remote: u32,
    pub(crate) sent_local: &'a mut u64,
    pub(crate) sent_remote: &'a mut u64,
    pub(crate) sent_local_records: &'a mut u64,
    pub(crate) sent_remote_records: &'a mut u64,
}

impl<'a, M> Mailer<'a, M> {
    /// Sends `msg` to `target`, delivered at the next superstep.
    ///
    /// This is the per-edge primitive — required whenever payloads differ
    /// per neighbour (e.g. SSSP's per-edge distances). A send of the *same*
    /// payload to every neighbour should go through [`Self::broadcast`]
    /// instead, which collapses the cross-worker traffic to one record per
    /// destination worker.
    #[inline]
    pub fn send(&mut self, target: VertexId, msg: M) {
        let w = self.worker_of[target as usize];
        if w == self.my_worker {
            *self.sent_local += 1;
            *self.sent_local_records += 1;
            self.local.push((target, msg));
        } else {
            *self.sent_remote += 1;
            *self.sent_remote_records += 1;
            self.outboxes[w as usize].push((target, msg));
        }
    }
}

impl<'a, M: Clone> Mailer<'a, M> {
    /// Sends `msg` to **every neighbour** of this vertex, deduplicated at
    /// the worker level: one record lands in each destination worker's grid
    /// cell (plus one in the local fast-path queue when any neighbour is
    /// worker-local), and the receiving worker fans it out to the sender's
    /// adjacent vertices through its fan-out index. Logical delivery — each
    /// neighbour receives exactly one copy, in the position a per-edge send
    /// loop would have produced — is unchanged, so results are bit-identical
    /// to `for &t in ctx.edges.targets { ctx.mail.send(t, msg) }` while
    /// remote traffic drops from `O(cut edges)` to `O(distinct (sender,
    /// worker) pairs)`.
    ///
    /// Falls back to per-edge sends when the lane is closed: broadcast
    /// disabled by [`EngineConfig::broadcast_fabric`], vertex ids beyond the
    /// taggable 2³¹ range, or a graph mutation this run having outdated the
    /// load-time fan-out index.
    ///
    /// [`EngineConfig::broadcast_fabric`]: crate::engine::EngineConfig::broadcast_fabric
    pub fn broadcast(&mut self, msg: M) {
        if !self.lane_open {
            for &t in self.adjacency {
                self.send(t, msg.clone());
            }
            return;
        }
        // Sideband mode (the wire path) records broadcast positions in the
        // marks vectors and ships the sender id untagged, so ids ≥ 2³¹
        // stay representable; the direct path steals the id top bit.
        let tagged = if self.sideband {
            self.sender
        } else {
            debug_assert_eq!(self.sender & crate::types::BROADCAST_TAG, 0);
            self.sender | crate::types::BROADCAST_TAG
        };
        // The load-time plan already deduplicated the destination workers
        // and counted the logical local/remote split, so a broadcast costs
        // O(distinct destination workers) — no per-edge scan at all.
        *self.sent_local += self.bcast_local as u64;
        *self.sent_remote += self.bcast_remote as u64;
        for (&w, &single) in self.bcast_plan.iter().zip(self.bcast_single) {
            let multi = single == crate::types::BROADCAST_MULTI;
            let id = if multi { tagged } else { single };
            if w == self.my_worker {
                *self.sent_local_records += 1;
                if multi && self.sideband {
                    self.local_marks.push(self.local.len() as u32);
                }
                self.local.push((id, msg.clone()));
            } else {
                *self.sent_remote_records += 1;
                if multi && self.sideband {
                    self.outbox_marks[w as usize].push(self.outboxes[w as usize].len() as u32);
                }
                self.outboxes[w as usize].push((id, msg.clone()));
            }
        }
    }

    /// Sends `msg` to every id in `targets`. When `targets` is the vertex's
    /// full adjacency slice (the common announce-to-neighbours pattern),
    /// the send is routed through the deduplicating broadcast lane; any
    /// other target list goes out as per-edge records, since the receiver
    /// can only expand a broadcast to the sender's *complete* local
    /// neighbour set.
    pub fn send_to_all(&mut self, targets: &[VertexId], msg: &M) {
        if std::ptr::eq(targets.as_ptr(), self.adjacency.as_ptr())
            && targets.len() == self.adjacency.len()
        {
            self.broadcast(msg.clone());
            return;
        }
        for &t in targets {
            self.send(t, msg.clone());
        }
    }
}

/// Aggregation handle: contribute to this superstep's partials and read the
/// previous superstep's merged values.
pub struct AggCtx<'a> {
    pub(crate) partial: &'a mut [AggValue],
    pub(crate) snapshot: &'a [AggValue],
}

impl<'a> AggCtx<'a> {
    /// Adds to a `SumI64` aggregator.
    #[inline]
    pub fn add_i64(&mut self, id: usize, v: i64) {
        match &mut self.partial[id] {
            AggValue::I64(acc) => *acc += v,
            other => panic!("aggregator {id} is not I64: {other:?}"),
        }
    }

    /// Adds to a `SumF64` aggregator.
    #[inline]
    pub fn add_f64(&mut self, id: usize, v: f64) {
        match &mut self.partial[id] {
            AggValue::F64(acc) => *acc += v,
            other => panic!("aggregator {id} is not F64: {other:?}"),
        }
    }

    /// Adds to one element of a `VecSumI64` aggregator.
    #[inline]
    pub fn add_vec_i64(&mut self, id: usize, index: usize, v: i64) {
        match &mut self.partial[id] {
            AggValue::VecI64(acc) => acc[index] += v,
            other => panic!("aggregator {id} is not VecI64: {other:?}"),
        }
    }

    /// Adds to one element of a `VecSumF64` aggregator.
    #[inline]
    pub fn add_vec_f64(&mut self, id: usize, index: usize, v: f64) {
        match &mut self.partial[id] {
            AggValue::VecF64(acc) => acc[index] += v,
            other => panic!("aggregator {id} is not VecF64: {other:?}"),
        }
    }

    /// ORs into an `Or` aggregator.
    #[inline]
    pub fn or_bool(&mut self, id: usize, v: bool) {
        match &mut self.partial[id] {
            AggValue::Bool(acc) => *acc |= v,
            other => panic!("aggregator {id} is not Bool: {other:?}"),
        }
    }

    /// Merges a maximum into a `MaxF64` aggregator.
    #[inline]
    pub fn max_f64(&mut self, id: usize, v: f64) {
        match &mut self.partial[id] {
            AggValue::F64(acc) => *acc = acc.max(v),
            other => panic!("aggregator {id} is not F64: {other:?}"),
        }
    }

    /// Merges a maximum into a `MaxI64` aggregator.
    #[inline]
    pub fn max_i64(&mut self, id: usize, v: i64) {
        match &mut self.partial[id] {
            AggValue::I64(acc) => *acc = (*acc).max(v),
            other => panic!("aggregator {id} is not I64: {other:?}"),
        }
    }

    /// Reads the value aggregated during the *previous* superstep (possibly
    /// overridden by master compute).
    #[inline]
    pub fn read(&self, id: usize) -> &AggValue {
        &self.snapshot[id]
    }
}

/// Everything a vertex can see and do during `compute`.
///
/// Fields are public so that disjoint borrows work naturally (e.g. iterating
/// `edges` while sending through `mail` and updating `worker`).
pub struct VertexContext<'a, P: Program> {
    /// Current superstep (0-based).
    pub superstep: u64,
    /// This vertex's global id.
    pub vertex: VertexId,
    /// Total number of vertices in the graph.
    pub num_vertices: u64,
    /// The logical worker hosting this vertex.
    pub worker_id: WorkerId,
    /// Engine seed (combine with vertex/superstep for local randomness).
    pub seed: u64,
    /// Global broadcast state (master-owned).
    pub global: &'a P::G,
    /// This vertex's value.
    pub value: &'a mut P::V,
    /// This vertex's adjacency.
    pub edges: Edges<'a, P::E>,
    /// Worker-local shared state (Spinner's async load counters live here).
    pub worker: &'a mut P::WorkerState,
    /// Message sending.
    pub mail: Mailer<'a, P::M>,
    /// Aggregator access.
    pub agg: AggCtx<'a>,
    pub(crate) halted: &'a mut bool,
    pub(crate) additions: &'a mut Vec<EdgeAddition<P::E>>,
    pub(crate) local_idx: u32,
}

impl<'a, P: Program> VertexContext<'a, P> {
    /// Vote to halt: the vertex is skipped in subsequent supersteps until a
    /// message re-activates it.
    #[inline]
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }

    /// A deterministic random stream for this `(seed, vertex, superstep)`.
    /// Independent of scheduling and of other vertices' draws.
    #[inline]
    pub fn rng(&self) -> SplitMix64 {
        spinner_graph::rng::vertex_stream(self.seed, self.vertex as u64, self.superstep)
    }

    /// Buffers an edge `self -> target` for addition at the superstep
    /// barrier (Giraph mutation semantics). The adjacency stays sorted;
    /// adding an edge that already exists creates no duplicate — the new
    /// value overwrites the old one.
    #[inline]
    pub fn add_edge(&mut self, target: VertexId, value: P::E) {
        self.additions.push(EdgeAddition { local_src: self.local_idx, target, value });
    }

    /// Degree (number of out-edges in the engine's adjacency).
    #[inline]
    pub fn degree(&self) -> usize {
        self.edges.len()
    }
}
