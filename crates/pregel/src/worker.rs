//! A logical worker: hosts a subset of vertices and executes the compute and
//! delivery phases of each superstep.
//!
//! Messages flow through a flat, reusable fabric instead of per-vertex
//! `Vec`s: delivery drains the worker's column of the [`OutboxGrid`] into a
//! staging buffer (chained per destination vertex), then a single gather
//! pass over the *recipients* rebuilds the flat inbox
//! `(inbox_start, inbox_len, msgs)` that the compute phase reads as one
//! slice per vertex. All buffers keep their capacity across supersteps, so
//! the steady state performs no heap allocation on the message path.
//!
//! Compute is driven by an **active list** — the sorted local indices of
//! the non-halted vertices, maintained incrementally (compute survivors
//! merged with delivery wake-ups) — so a superstep's cost scales with the
//! vertices that actually have work, not with the worker's vertex count.
//! The engine's `dense_scan` configuration switches compute back to the
//! full `0..n_local` walk (with a halted/empty-inbox skip); both drivers
//! visit exactly the same vertices in the same order, so results are
//! bit-identical by construction.

use crate::aggregate::{AggValue, AggregatorSpec};
use crate::context::{AggCtx, EdgeAddition, Edges, Mailer, VertexContext};
use crate::metrics::WorkerMetrics;
use crate::program::Program;
use crate::transport::{Transport, TransportError};
use crate::types::{OutboxGrid, WorkerId, BROADCAST_TAG};
use crate::wire::{decode_frame, encode_frame, WireFormat, WireRecord};
use spinner_graph::VertexId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Sentinel for "no next message" in the staging chains.
const NIL: u32 = u32::MAX;

/// One logical worker's vertex store, mailboxes, and per-superstep scratch.
pub struct Worker<P: Program> {
    pub(crate) id: WorkerId,
    /// Local index -> global vertex id.
    pub(crate) global_ids: Vec<VertexId>,
    pub(crate) values: Vec<P::V>,
    pub(crate) halted: Vec<bool>,
    /// Maintained count of `true` entries in `halted` (updated on every
    /// halt/wake transition so the engine never rescans the vector).
    pub(crate) num_halted: u64,
    /// Local CSR: `offsets[i]..offsets[i+1]` indexes `targets`/`edge_values`.
    pub(crate) offsets: Vec<u64>,
    pub(crate) targets: Vec<VertexId>,
    pub(crate) edge_values: Vec<P::E>,
    /// Flat inbox: vertex `i` reads `msgs[inbox_start[i]..][..inbox_len[i]]`
    /// — but only when `inbox_epoch[i]` matches the current delivery epoch;
    /// a stale stamp means an empty inbox. Stamping lets the gather pass
    /// touch only the vertices that actually received messages instead of
    /// rebuilding an O(n_local) offset array every superstep.
    pub(crate) inbox_start: Vec<u32>,
    pub(crate) inbox_len: Vec<u32>,
    pub(crate) inbox_epoch: Vec<u64>,
    pub(crate) msgs: Vec<P::M>,
    /// Active list: sorted local indices of the non-halted vertices, i.e.
    /// exactly the set the dense scan would compute. Rebuilt by every
    /// delivery phase as the merge of `survivors` and `woken`; seeded from
    /// `halted` at (re)load time.
    active: Vec<u32>,
    /// Compute-phase scratch: vertices that computed and did not halt, in
    /// ascending order (the compute loop itself is ascending).
    survivors: Vec<u32>,
    /// Delivery-phase scratch: halted vertices woken by a message this
    /// epoch (sorted before the merge; disjoint from `survivors` because
    /// survivors are never halted).
    woken: Vec<u32>,
    /// Delivery-phase scratch: local indices that received at least one
    /// message this epoch, in first-arrival order — the gather pass walks
    /// this instead of every local vertex.
    recipients: Vec<u32>,
    /// Delivery staging: messages in arrival order; the gather pass clones
    /// them into `msgs` in vertex order (messages are `Clone` by the
    /// [`crate::types::Value`] bound, and in practice plain-old-data).
    staging: Vec<P::M>,
    /// `staging_next[i]` chains message `i` to the next message addressed to
    /// the same vertex (or [`NIL`]).
    staging_next: Vec<u32>,
    /// Locality fast path: messages this worker sent to its own vertices
    /// during the compute phase. They bypass the [`OutboxGrid`] mutex cells
    /// entirely and are folded into the staging chains by the next delivery
    /// phase, at the position the grid's diagonal cell used to occupy (so
    /// per-vertex message order — and therefore every result — is unchanged).
    self_staging: Vec<(VertexId, P::M)>,
    /// Broadcast fan-out index (the receive side of the broadcast lane): a
    /// reverse CSR over *global sender ids* — `fan_targets[fan_offsets[s]..
    /// fan_offsets[s + 1]]` lists, in `s`'s adjacency order, the local
    /// indices of this worker's vertices that appear in `s`'s engine
    /// adjacency. Built by `load_topology` alongside the inbound counts
    /// (capacity preserved across warm resets and migrations), read by the
    /// delivery phase to expand tagged [`BROADCAST_TAG`] records. Empty when
    /// the broadcast lane is disabled.
    pub(crate) fan_offsets: Vec<u32>,
    pub(crate) fan_targets: Vec<u32>,
    /// Broadcast *plan* (the send side of the broadcast lane), also built
    /// by `load_topology`: for local vertex `li`,
    /// `plan_workers[plan_offsets[li]..plan_offsets[li + 1]]` lists the
    /// distinct destination workers of its adjacency (first-occurrence
    /// order), and `plan_local[li]`/`plan_remote[li]` the logical
    /// local/remote delivery counts one broadcast implies — so
    /// [`Mailer::broadcast`] costs O(distinct workers), not O(degree).
    /// Empty (all four) when the broadcast lane is disabled.
    pub(crate) plan_offsets: Vec<u32>,
    pub(crate) plan_workers: Vec<WorkerId>,
    /// Parallel to `plan_workers`: the lone neighbour's id where the
    /// record can ship as a plain unicast, `BROADCAST_MULTI` otherwise.
    pub(crate) plan_single: Vec<VertexId>,
    pub(crate) plan_local: Vec<u32>,
    pub(crate) plan_remote: Vec<u32>,
    /// Per-vertex chain head/tail into `staging`, valid only when
    /// `chain_epoch[v]` equals the current delivery epoch (stamping avoids
    /// an O(vertices) reset every superstep).
    chain_head: Vec<u32>,
    chain_tail: Vec<u32>,
    chain_epoch: Vec<u64>,
    /// Current delivery epoch (bumped once per delivery phase).
    epoch: u64,
    /// Outboxes indexed by destination worker; published into the
    /// [`OutboxGrid`] at the end of the compute phase (direct path) or
    /// folded + encoded into transport frames (wire path).
    pub(crate) outboxes: Vec<Vec<(VertexId, P::M)>>,
    /// Sideband broadcast marks, parallel to `outboxes`: positions of
    /// broadcast records within each outbox. Maintained only on the wire
    /// path, where broadcast records carry *untagged* sender ids (no 2³¹
    /// cap) and the flag travels in the frame's section headers instead.
    pub(crate) outbox_marks: Vec<Vec<u32>>,
    /// Sideband broadcast marks for the `self_staging` fast-path queue
    /// (wire path only; the queue itself never crosses the transport).
    pub(crate) self_marks: Vec<u32>,
    /// Wire publish scratch: the sorted/folded records of one frame.
    wire_stage: Vec<WireRecord<P::M>>,
    /// Wire publish scratch: `(id << 32) | position` sort keys — unique by
    /// position, so `sort_unstable` yields a *stable* by-destination order
    /// without the allocation a stable sort would make.
    sort_keys: Vec<u64>,
    /// Wire delivery scratch: decoded records of one inbound frame.
    wire_recv: Vec<WireRecord<P::M>>,
    /// Wire delivery scratch: one section's decoded ids.
    wire_ids: Vec<u64>,
    /// Buffered edge additions, applied at the barrier.
    pub(crate) additions: Vec<EdgeAddition<P::E>>,
    /// This superstep's aggregator partials.
    pub(crate) partial_aggs: Vec<AggValue>,
    /// Last superstep's worker state, offered back to
    /// [`Program::reset_worker`] so its buffers stay warm.
    cached_worker_state: Option<P::WorkerState>,
    pub(crate) metrics: WorkerMetrics,
}

impl<P: Program> Worker<P> {
    pub(crate) fn new(id: WorkerId, num_workers: usize) -> Self {
        Self {
            id,
            global_ids: Vec::new(),
            values: Vec::new(),
            halted: Vec::new(),
            num_halted: 0,
            offsets: vec![0],
            targets: Vec::new(),
            edge_values: Vec::new(),
            inbox_start: Vec::new(),
            inbox_len: Vec::new(),
            inbox_epoch: Vec::new(),
            msgs: Vec::new(),
            active: Vec::new(),
            survivors: Vec::new(),
            woken: Vec::new(),
            recipients: Vec::new(),
            staging: Vec::new(),
            staging_next: Vec::new(),
            self_staging: Vec::new(),
            fan_offsets: Vec::new(),
            fan_targets: Vec::new(),
            plan_offsets: Vec::new(),
            plan_workers: Vec::new(),
            plan_single: Vec::new(),
            plan_local: Vec::new(),
            plan_remote: Vec::new(),
            chain_head: Vec::new(),
            chain_tail: Vec::new(),
            chain_epoch: Vec::new(),
            epoch: 0,
            outboxes: (0..num_workers).map(|_| Vec::new()).collect(),
            outbox_marks: (0..num_workers).map(|_| Vec::new()).collect(),
            self_marks: Vec::new(),
            wire_stage: Vec::new(),
            sort_keys: Vec::new(),
            wire_recv: Vec::new(),
            wire_ids: Vec::new(),
            additions: Vec::new(),
            partial_aggs: Vec::new(),
            cached_worker_state: None,
            metrics: WorkerMetrics::default(),
        }
    }

    /// Empties every topology-bearing vector (vertices, values, adjacency)
    /// while keeping its allocation, ahead of a (re)load. Message-fabric
    /// buffers are untouched — [`Self::reset_fabric`] handles those.
    pub(crate) fn clear_topology(&mut self) {
        self.global_ids.clear();
        self.values.clear();
        self.halted.clear();
        self.num_halted = 0;
        self.offsets.clear();
        self.targets.clear();
        self.edge_values.clear();
        self.plan_offsets.clear();
        self.plan_workers.clear();
        self.plan_single.clear();
        self.plan_local.clear();
        self.plan_remote.clear();
        debug_assert!(self.additions.is_empty(), "additions drained at the last barrier");
    }

    /// (Re)sizes the per-vertex fabric state once the vertex set is known.
    /// All buffers keep their capacity, so a warm engine re-targeted at a
    /// mutated graph starts from the previous run's high-water marks. The
    /// delivery epoch is *not* reset: it grows monotonically for the life of
    /// the worker, so stale `chain_epoch` stamps can never alias a future
    /// delivery.
    pub(crate) fn reset_fabric(&mut self) {
        let n_local = self.global_ids.len();
        self.inbox_start.clear();
        self.inbox_start.resize(n_local, 0);
        self.inbox_len.clear();
        self.inbox_len.resize(n_local, 0);
        self.inbox_epoch.clear();
        self.inbox_epoch.resize(n_local, 0);
        self.chain_head.clear();
        self.chain_head.resize(n_local, NIL);
        self.chain_tail.clear();
        self.chain_tail.resize(n_local, NIL);
        self.chain_epoch.clear();
        self.chain_epoch.resize(n_local, 0);
        self.msgs.clear();
        // A fresh inbox must read as empty even though the monotonic epoch
        // keeps climbing: bump past every zeroed `inbox_epoch` stamp. (The
        // first delivery bumps it again, so stamps written by the *previous*
        // topology can never alias a future inbox either.)
        self.epoch += 1;
        // Seed the active list from the load-time halted flags; the
        // scheduler scratch is sized once here so the per-superstep merge
        // never allocates (each list is bounded by n_local).
        self.active.clear();
        self.active.reserve(n_local);
        self.active
            .extend(self.halted.iter().enumerate().filter(|(_, &h)| !h).map(|(i, _)| i as u32));
        self.survivors.clear();
        self.survivors.reserve(n_local);
        self.woken.clear();
        self.woken.reserve(n_local);
        self.recipients.clear();
        self.recipients.reserve(n_local);
        self.metrics.reset();
        debug_assert!(
            self.staging.is_empty()
                && self.staging_next.is_empty()
                && self.self_staging.is_empty()
                && self.self_marks.is_empty()
                && self.outbox_marks.iter().all(|m| m.is_empty())
        );
    }

    /// Pre-reserves the delivery-side buffers for `inbound` messages — the
    /// number of adjacency entries addressed to this worker, which bounds the
    /// per-superstep delivery volume of every send-along-edges program —
    /// plus the worker-local send queue for the `self_inbound` of them that
    /// originate on this worker (the locality fast path). Done at (re)load
    /// time so graph growth between warm runs never forces a message-path
    /// reallocation (see [`WorkerMetrics::fabric_reallocs`]).
    pub(crate) fn reserve_inbound(&mut self, inbound: usize, self_inbound: usize) {
        debug_assert!(self.staging.is_empty() && self.msgs.is_empty());
        self.staging.reserve(inbound);
        self.staging_next.reserve(inbound);
        self.msgs.reserve(inbound);
        self.self_staging.reserve(self_inbound);
    }

    /// Number of vertices hosted here.
    pub fn num_local_vertices(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of halted vertices (maintained, O(1)).
    pub(crate) fn halted_count(&self) -> u64 {
        self.num_halted
    }

    /// Executes the compute phase of one superstep. The default driver
    /// walks the maintained active list (exactly the non-halted vertices,
    /// ascending); `dense_scan` walks `0..n_local` with a halted/empty-inbox
    /// skip instead — the same visit set in the same order, so the two
    /// drivers are bit-identical and the dense arm serves as a cheap
    /// verification oracle. `lane_open` snapshots the engine's
    /// broadcast-lane state for the whole phase (the lane only closes at a
    /// barrier, so the snapshot is exact). `sideband` is true on the wire
    /// path: broadcast records then carry untagged sender ids with their
    /// queue positions recorded in the marks vectors (see
    /// [`Mailer::broadcast`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compute_phase(
        &mut self,
        program: &P,
        global: &P::G,
        snapshot: &[AggValue],
        specs: &[AggregatorSpec],
        worker_of: &[WorkerId],
        superstep: u64,
        seed: u64,
        num_vertices: u64,
        lane_open: bool,
        dense_scan: bool,
        sideband: bool,
    ) {
        let start = Instant::now();
        self.metrics.reset();
        // Fast-path queue growth counts as fabric growth: it replaces the
        // grid's diagonal cell, whose capacity reuse the steady-state
        // zero-allocation guarantee used to cover. The sideband mark list
        // is part of the same queue on the wire path.
        let self_staging_cap = self.self_staging.capacity();
        let self_marks_cap = self.self_marks.capacity();
        // Reset partials and worker state in place where possible — both are
        // per-superstep, but their buffers need not be.
        if self.partial_aggs.len() == specs.len() {
            for (spec, acc) in specs.iter().zip(&mut self.partial_aggs) {
                spec.reset_to_identity(acc);
            }
        } else {
            self.partial_aggs = specs.iter().map(|s| s.identity()).collect();
        }
        let mut worker_state = match self.cached_worker_state.take() {
            Some(mut state) => {
                if !program.reset_worker(&mut state, global, self.id) {
                    state = program.init_worker(global, self.id);
                }
                state
            }
            None => program.init_worker(global, self.id),
        };

        let n_local = self.global_ids.len();
        debug_assert_eq!(self.inbox_epoch.len(), n_local);
        debug_assert!(self.survivors.is_empty());
        let survivors_cap = self.survivors.capacity();
        let count = if dense_scan { n_local } else { self.active.len() };
        for idx in 0..count {
            let i = if dense_scan { idx } else { self.active[idx] as usize };
            let (m_lo, m_len) = if self.inbox_epoch[i] == self.epoch {
                (self.inbox_start[i] as usize, self.inbox_len[i] as usize)
            } else {
                (0, 0)
            };
            if self.halted[i] {
                debug_assert!(dense_scan, "active list never holds a halted vertex");
                if m_len == 0 {
                    continue;
                }
                // Delivery wakes messaged vertices, so this is unreachable
                // today; kept so the halted counter stays correct if the
                // wake-up ever moves.
                self.halted[i] = false;
                self.num_halted -= 1;
            }
            self.metrics.computed += 1;
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            // The broadcast plan exists exactly when the lane can open;
            // with the lane closed the Mailer never reads it.
            let (bcast_plan, bcast_single, bcast_local, bcast_remote) = if lane_open {
                let p_lo = self.plan_offsets[i] as usize;
                let p_hi = self.plan_offsets[i + 1] as usize;
                (
                    &self.plan_workers[p_lo..p_hi],
                    &self.plan_single[p_lo..p_hi],
                    self.plan_local[i],
                    self.plan_remote[i],
                )
            } else {
                (&[][..], &[][..], 0, 0)
            };
            // Split borrows: every field of the context aliases a distinct
            // part of `self`; the inbox slice is read-only and disjoint from
            // all of them.
            let mut ctx = VertexContext::<P> {
                superstep,
                vertex: self.global_ids[i],
                num_vertices,
                worker_id: self.id,
                seed,
                global,
                value: &mut self.values[i],
                edges: Edges {
                    targets: &self.targets[lo..hi],
                    values: &mut self.edge_values[lo..hi],
                },
                worker: &mut worker_state,
                mail: Mailer {
                    outboxes: &mut self.outboxes,
                    outbox_marks: &mut self.outbox_marks,
                    local: &mut self.self_staging,
                    local_marks: &mut self.self_marks,
                    worker_of,
                    my_worker: self.id,
                    sender: self.global_ids[i],
                    adjacency: &self.targets[lo..hi],
                    lane_open,
                    sideband,
                    bcast_plan,
                    bcast_single,
                    bcast_local,
                    bcast_remote,
                    sent_local: &mut self.metrics.sent_local,
                    sent_remote: &mut self.metrics.sent_remote,
                    sent_local_records: &mut self.metrics.sent_local_records,
                    sent_remote_records: &mut self.metrics.sent_remote_records,
                },
                agg: AggCtx { partial: &mut self.partial_aggs, snapshot },
                halted: &mut self.halted[i],
                additions: &mut self.additions,
                local_idx: i as u32,
            };
            program.compute(&mut ctx, &self.msgs[m_lo..m_lo + m_len]);
            if self.halted[i] {
                self.num_halted += 1;
            } else {
                // Ascending in both drivers, so `survivors` stays sorted.
                self.survivors.push(i as u32);
            }
        }
        self.cached_worker_state = Some(worker_state);
        self.metrics.fabric_reallocs +=
            u64::from(self.self_staging.capacity() != self_staging_cap)
                + u64::from(self.self_marks.capacity() != self_marks_cap)
                + u64::from(self.survivors.capacity() != survivors_cap);
        self.metrics.compute_ns = start.elapsed().as_nanos() as u64;
    }

    /// Publishes this worker's outboxes into the grid by swapping each
    /// non-empty outbox with the (drained) cell buffer — the capacities
    /// double-buffer between sender and grid, so neither side reallocates in
    /// the steady state. Worker-local messages never pass through here: the
    /// fast path keeps them in `self_staging`, so the grid's diagonal cells
    /// stay empty for the life of the engine.
    pub(crate) fn publish_outboxes(&mut self, grid: &OutboxGrid<P::M>, num_workers: usize) {
        debug_assert!(
            self.outboxes[self.id as usize].is_empty(),
            "local sends bypass the grid"
        );
        let row = self.id as usize * num_workers;
        for (j, outbox) in self.outboxes.iter_mut().enumerate() {
            if outbox.is_empty() {
                continue;
            }
            let cell = &mut *grid[row + j].lock().expect("grid lock");
            debug_assert!(cell.is_empty(), "cell drained by last delivery");
            std::mem::swap(outbox, cell);
        }
    }

    /// Delivery phase: drains this worker's column of the grid — and the
    /// fast-path local queue in place of the diagonal cell — into the
    /// staging chains (applying the program's combiner), then gathers the
    /// chains into the flat `(inbox_start, inbox_len, msgs)` inbox — walking
    /// only this epoch's recipients — wakes messaged vertices, and rebuilds
    /// the active list as the merge of this superstep's compute survivors
    /// with the newly woken. [`BROADCAST_TAG`]ged records fan out through the load-time
    /// index to every local vertex adjacent to the sender, in the sender's
    /// adjacency order — exactly the positions the per-edge unicasts would
    /// have occupied, so per-vertex message order (and therefore every
    /// result) is identical across the two lanes. Messages keep
    /// (source-worker, send-order) order per vertex.
    pub(crate) fn deliver_and_build(
        &mut self,
        program: &P,
        grid: &OutboxGrid<P::M>,
        local_idx: &[u32],
        num_workers: usize,
    ) {
        let caps =
            (self.staging.capacity(), self.staging_next.capacity(), self.msgs.capacity());
        let sched_caps =
            (self.recipients.capacity(), self.woken.capacity(), self.active.capacity());
        self.epoch += 1;
        let epoch = self.epoch;
        debug_assert!(self.staging.is_empty() && self.staging_next.is_empty());

        let me = self.id as usize;
        {
            // Split borrows: the staging chains grow while the fan-out index
            // is read to expand broadcasts, so the fields are borrowed once
            // here and threaded through a free-function stager.
            let Self {
                staging,
                staging_next,
                chain_head,
                chain_tail,
                chain_epoch,
                fan_offsets,
                fan_targets,
                self_staging,
                recipients,
                metrics,
                ..
            } = self;
            debug_assert!(recipients.is_empty());
            // The tag bit only means "broadcast" when this topology built
            // the fan-out index (the lane is permanently closed otherwise).
            // Without it, ids with the top bit set are plain vertex ids of
            // a > 2³¹-vertex graph and must route through `local_idx` as
            // unicasts, exactly as before the lane existed. (A built index
            // with the lane merely *closed* mid-run still expands the
            // tagged records already in flight.)
            let expand = !fan_offsets.is_empty();
            // Stages one drained record; `logical` is the matching recv
            // counter (one count per delivered message, not per record, so
            // the traffic accounting is lane-independent).
            let mut stage_record = |id: VertexId, msg: P::M, logical: &mut u64| {
                if expand && id & BROADCAST_TAG != 0 {
                    let s = (id & !BROADCAST_TAG) as usize;
                    let lo = fan_offsets[s] as usize;
                    let hi = fan_offsets[s + 1] as usize;
                    *logical += (hi - lo) as u64;
                    for &li in &fan_targets[lo..hi] {
                        stage_message(
                            program,
                            staging,
                            staging_next,
                            chain_head,
                            chain_tail,
                            chain_epoch,
                            recipients,
                            li as usize,
                            msg.clone(),
                            epoch,
                        );
                    }
                } else {
                    *logical += 1;
                    stage_message(
                        program,
                        staging,
                        staging_next,
                        chain_head,
                        chain_tail,
                        chain_epoch,
                        recipients,
                        local_idx[id as usize] as usize,
                        msg,
                        epoch,
                    );
                }
            };
            for src in 0..num_workers {
                if src == me {
                    // Locality fast path: this worker's own sends never
                    // entered the grid. Processing them here — where the
                    // diagonal cell was drained before — preserves the
                    // (source-worker, send-order) order per vertex exactly.
                    if self_staging.is_empty() {
                        continue;
                    }
                    let mut local = std::mem::take(self_staging);
                    for (id, msg) in local.drain(..) {
                        stage_record(id, msg, &mut metrics.recv_local);
                    }
                    // Hand the drained buffer back so its capacity persists.
                    *self_staging = local;
                    continue;
                }
                let mut cell = grid[src * num_workers + me].lock().expect("grid lock");
                if cell.is_empty() {
                    continue;
                }
                for (id, msg) in cell.drain(..) {
                    stage_record(id, msg, &mut metrics.recv_remote);
                }
            }
        }
        self.finish_delivery(caps, sched_caps);
    }

    /// Shared tail of both delivery paths (direct grid and wire frames):
    /// gather the staging chains into the flat inbox, wake messaged
    /// vertices, rebuild the active list, and account buffer growth.
    fn finish_delivery(
        &mut self,
        caps: (usize, usize, usize),
        sched_caps: (usize, usize, usize),
    ) {
        let epoch = self.epoch;
        // u32 indices/offsets cap a worker at ~4.29e9 staged messages per
        // superstep; fail loudly instead of wrapping (one check per phase).
        assert!(self.staging.len() < NIL as usize, "per-superstep message overflow");

        // Gather: walk each *recipient's* chain once, cloning messages into
        // the flat inbox and stamping its epoch; vertices with no messages
        // keep a stale stamp and read as empty without being touched.
        // `clear` keeps every capacity for the next superstep.
        self.msgs.clear();
        self.woken.clear();
        for r in 0..self.recipients.len() {
            let v = self.recipients[r] as usize;
            debug_assert_eq!(self.chain_epoch[v], epoch);
            let start = self.msgs.len() as u32;
            let mut i = self.chain_head[v] as usize;
            loop {
                self.msgs.push(self.staging[i].clone());
                let next = self.staging_next[i];
                if next == NIL {
                    break;
                }
                i = next as usize;
            }
            self.inbox_start[v] = start;
            self.inbox_len[v] = self.msgs.len() as u32 - start;
            self.inbox_epoch[v] = epoch;
            if self.halted[v] {
                self.halted[v] = false;
                self.num_halted -= 1;
                self.woken.push(v as u32);
            }
        }
        self.recipients.clear();
        self.staging.clear();
        self.staging_next.clear();

        // Rebuild the active list: the compute survivors (already sorted)
        // merged with the newly woken (sorted here; arrival order follows
        // the grid drain, not vertex order). The two are disjoint — a
        // survivor is by definition not halted, so it cannot be woken.
        self.woken.sort_unstable();
        self.active.clear();
        let (mut a, mut b) = (0, 0);
        while a < self.survivors.len() && b < self.woken.len() {
            if self.survivors[a] < self.woken[b] {
                self.active.push(self.survivors[a]);
                a += 1;
            } else {
                self.active.push(self.woken[b]);
                b += 1;
            }
        }
        self.active.extend_from_slice(&self.survivors[a..]);
        self.active.extend_from_slice(&self.woken[b..]);
        self.survivors.clear();

        let caps_after =
            (self.staging.capacity(), self.staging_next.capacity(), self.msgs.capacity());
        let sched_caps_after =
            (self.recipients.capacity(), self.woken.capacity(), self.active.capacity());
        self.metrics.fabric_reallocs += u64::from(caps_after.0 != caps.0)
            + u64::from(caps_after.1 != caps.1)
            + u64::from(caps_after.2 != caps.2)
            + u64::from(sched_caps_after.0 != sched_caps.0)
            + u64::from(sched_caps_after.1 != sched_caps.1)
            + u64::from(sched_caps_after.2 != sched_caps.2);
    }

    /// Wire-path publish: folds, sorts, and encodes each non-empty outbox
    /// into one frame per destination worker and publishes it through the
    /// transport. Replaces [`Self::publish_outboxes`] when a transport is
    /// configured.
    ///
    /// Within each maximal unicast run (broadcast records — identified by
    /// the sideband marks — are never crossed), records are stably sorted
    /// by destination id and consecutive same-destination records are
    /// folded through [`Program::combine`] when `fold` is on. That is the
    /// exact combine call, in the exact order, that the receiver's staging
    /// chains would have applied at delivery, so results are bit-identical
    /// for *any* combiner — including non-associative-looking float folds
    /// and partial combiners (a `combine` returning `false` simply keeps
    /// both records). Sorting only permutes records *across* destinations
    /// inside a run, never within one (the sort keys embed the original
    /// position), so per-vertex delivery order is preserved exactly.
    ///
    /// Returns the first typed [`TransportError`] a publish raised (the
    /// frames for other destinations are still attempted first, keeping
    /// outbox/metric state consistent for the abort path).
    pub(crate) fn publish_wire(
        &mut self,
        program: &P,
        transport: &dyn Transport,
        format: WireFormat,
        fold: bool,
        num_workers: usize,
    ) -> Result<(), TransportError> {
        let mut failure: Option<TransportError> = None;
        let Self { id, outboxes, outbox_marks, wire_stage, sort_keys, metrics, .. } = self;
        let me = *id as usize;
        debug_assert!(outboxes[me].is_empty(), "local sends bypass the transport");
        let scratch_caps = (wire_stage.capacity(), sort_keys.capacity());
        for dst in 0..num_workers {
            if dst == me {
                continue;
            }
            let outbox = &mut outboxes[dst];
            let marks = &mut outbox_marks[dst];
            if outbox.is_empty() {
                debug_assert!(marks.is_empty());
                continue;
            }
            wire_stage.clear();
            let mut unicast_logical = 0u64;
            let mut mi = 0usize;
            let mut pos = 0usize;
            while pos < outbox.len() {
                if mi < marks.len() && marks[mi] as usize == pos {
                    // Broadcast run: consecutive marked positions, kept in
                    // send order (fan-out expansion positions depend on it).
                    while mi < marks.len() && marks[mi] as usize == pos {
                        let (bid, msg) = outbox[pos].clone();
                        wire_stage.push(WireRecord { broadcast: true, id: bid as u64, msg });
                        mi += 1;
                        pos += 1;
                    }
                    continue;
                }
                let run_end = if mi < marks.len() { marks[mi] as usize } else { outbox.len() };
                let run = &outbox[pos..run_end];
                unicast_logical += run.len() as u64;
                sort_keys.clear();
                for (k, &(idv, _)) in run.iter().enumerate() {
                    sort_keys.push((u64::from(idv) << 32) | k as u64);
                }
                sort_keys.sort_unstable();
                for &key in sort_keys.iter() {
                    let idv = (key >> 32) as u32;
                    let msg = run[(key & 0xFFFF_FFFF) as usize].1.clone();
                    if fold {
                        if let Some(last) = wire_stage.last_mut() {
                            if !last.broadcast
                                && last.id == u64::from(idv)
                                && program.combine(&mut last.msg, &msg)
                            {
                                metrics.wire_folded += 1;
                                continue;
                            }
                        }
                    }
                    wire_stage.push(WireRecord { broadcast: false, id: u64::from(idv), msg });
                }
                pos = run_end;
            }
            debug_assert_eq!(mi, marks.len());
            outbox.clear();
            marks.clear();
            let buf = transport.begin(me, dst);
            let cap = buf.capacity();
            let frame = encode_frame(format, wire_stage, unicast_logical, buf);
            metrics.bytes_sent += frame.len() as u64;
            metrics.frames_sent += 1;
            // Frame-buffer growth is fabric growth: recycling keeps the
            // capacity across supersteps, so the steady state stays at zero.
            metrics.fabric_reallocs += u64::from(frame.capacity() != cap);
            if let Err(e) = transport.publish(me, dst, frame) {
                failure.get_or_insert(e);
            }
        }
        metrics.fabric_reallocs += u64::from(wire_stage.capacity() != scratch_caps.0)
            + u64::from(sort_keys.capacity() != scratch_caps.1);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Wire-path delivery: decodes the frames addressed to this worker (and
    /// drains the sideband-marked local fast-path queue) into the staging
    /// chains, then runs the shared gather/wake/merge tail. Replaces
    /// [`Self::deliver_and_build`] when a transport is configured.
    ///
    /// Logical receive accounting is fold-invariant: each frame's trailer
    /// carries its *pre-fold* unicast count, and broadcast records add
    /// their fan-out width — so `recv_remote` matches the direct path
    /// bit-for-bit across every transport × format × fold arm.
    ///
    /// On a typed transport failure the remaining lanes are still drained
    /// and the shared tail still runs — buffer and scheduler state stay
    /// consistent for the abort/recovery path — and the first error is
    /// returned afterwards. Receive-side recovery work (retransmits the
    /// reliability layer performed on this worker's behalf) is attributed
    /// to [`WorkerMetrics::retransmits`] by diffing the transport's
    /// cumulative counters around the drain.
    pub(crate) fn deliver_and_build_wire(
        &mut self,
        program: &P,
        transport: &dyn Transport,
        local_idx: &[u32],
        num_workers: usize,
    ) -> Result<(), TransportError> {
        let mut failure: Option<TransportError> = None;
        let stats_before = transport.recv_stats(self.id as usize);
        let caps =
            (self.staging.capacity(), self.staging_next.capacity(), self.msgs.capacity());
        let sched_caps =
            (self.recipients.capacity(), self.woken.capacity(), self.active.capacity());
        self.epoch += 1;
        let epoch = self.epoch;
        debug_assert!(self.staging.is_empty() && self.staging_next.is_empty());

        let me = self.id as usize;
        {
            let Self {
                staging,
                staging_next,
                chain_head,
                chain_tail,
                chain_epoch,
                fan_offsets,
                fan_targets,
                self_staging,
                self_marks,
                recipients,
                metrics,
                wire_recv,
                wire_ids,
                ..
            } = self;
            debug_assert!(recipients.is_empty());
            let wire_scratch_caps = (wire_recv.capacity(), wire_ids.capacity());
            // Stages one record (broadcast flag explicit — this path never
            // reads the id top bit, so ids are full-width) and returns the
            // logical deliveries it produced.
            let mut stage_record = |broadcast: bool, rid: u64, msg: P::M| -> u64 {
                if broadcast {
                    let s = rid as usize;
                    let lo = fan_offsets[s] as usize;
                    let hi = fan_offsets[s + 1] as usize;
                    for &li in &fan_targets[lo..hi] {
                        stage_message(
                            program,
                            staging,
                            staging_next,
                            chain_head,
                            chain_tail,
                            chain_epoch,
                            recipients,
                            li as usize,
                            msg.clone(),
                            epoch,
                        );
                    }
                    (hi - lo) as u64
                } else {
                    stage_message(
                        program,
                        staging,
                        staging_next,
                        chain_head,
                        chain_tail,
                        chain_epoch,
                        recipients,
                        local_idx[rid as usize] as usize,
                        msg,
                        epoch,
                    );
                    1
                }
            };
            for src in 0..num_workers {
                if src == me {
                    // Locality fast path, sideband flavour: broadcast
                    // records are the marked positions.
                    if self_staging.is_empty() {
                        debug_assert!(self_marks.is_empty());
                        continue;
                    }
                    let mut local = std::mem::take(self_staging);
                    let mut mi = 0usize;
                    for (pos, (rid, msg)) in local.drain(..).enumerate() {
                        let broadcast = mi < self_marks.len() && self_marks[mi] as usize == pos;
                        if broadcast {
                            mi += 1;
                        }
                        metrics.recv_local += stage_record(broadcast, u64::from(rid), msg);
                    }
                    debug_assert_eq!(mi, self_marks.len());
                    self_marks.clear();
                    *self_staging = local;
                    continue;
                }
                loop {
                    match transport.take(src, me) {
                        Ok(Some(frame)) => {
                            wire_recv.clear();
                            match decode_frame::<P::M>(&frame, wire_ids, wire_recv) {
                                Ok(unicast_logical) => {
                                    metrics.recv_remote += unicast_logical;
                                    for rec in wire_recv.drain(..) {
                                        let expanded =
                                            stage_record(rec.broadcast, rec.id, rec.msg);
                                        if rec.broadcast {
                                            metrics.recv_remote += expanded;
                                        }
                                    }
                                    transport.recycle(src, me, frame);
                                }
                                Err(_) => {
                                    // Undecodable after transport-level
                                    // acceptance: only reachable without
                                    // the reliability layer (which NACKs
                                    // corrupt frames instead). Typed, not
                                    // a panic.
                                    transport.recycle(src, me, frame);
                                    failure.get_or_insert(TransportError::Corrupt {
                                        src,
                                        dst: me,
                                    });
                                    break;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            failure.get_or_insert(e);
                            break;
                        }
                    }
                }
            }
            metrics.fabric_reallocs += u64::from(wire_recv.capacity() != wire_scratch_caps.0)
                + u64::from(wire_ids.capacity() != wire_scratch_caps.1);
        }
        let stats_after = transport.recv_stats(self.id as usize);
        self.metrics.retransmits += stats_after.retransmits - stats_before.retransmits;
        self.finish_delivery(caps, sched_caps);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Applies buffered edge additions, keeping each adjacency run sorted and
    /// duplicate-free (a re-added edge overwrites the existing value).
    ///
    /// Any applied addition outdates every worker's load-time broadcast
    /// fan-out index (the new target's hosting worker cannot be patched from
    /// here mid-phase), so the first mutation closes the engine's broadcast
    /// `lane_open` for the rest of the run — subsequent broadcasts fall back
    /// to per-edge unicast, which always reads the live adjacency. The next
    /// topology (re)load rebuilds the index and reopens the lane.
    pub(crate) fn apply_mutations(&mut self, lane_open: &AtomicBool) {
        if self.additions.is_empty() {
            return;
        }
        lane_open.store(false, Ordering::Release);
        let mut additions = std::mem::take(&mut self.additions);
        additions.sort_by_key(|a| (a.local_src, a.target));

        let n_local = self.global_ids.len();
        let mut new_offsets = Vec::with_capacity(n_local + 1);
        let mut new_targets = Vec::with_capacity(self.targets.len() + additions.len());
        let mut new_values: Vec<P::E> = Vec::with_capacity(new_targets.capacity());
        new_offsets.push(0u64);

        let mut add_iter = additions.into_iter().peekable();
        // Drain the old parallel arrays through owned iterators so values
        // move without cloning.
        let old_targets = std::mem::take(&mut self.targets);
        let old_values = std::mem::take(&mut self.edge_values);
        let mut old_iter = old_targets.into_iter().zip(old_values).peekable();

        for i in 0..n_local {
            let hi = self.offsets[i + 1];
            let mut consumed = self.offsets[i];
            let run_start = new_targets.len();
            // Merge the sorted old run with the sorted additions for vertex i.
            loop {
                let next_add = match add_iter.peek() {
                    Some(a) if a.local_src == i as u32 => Some(a.target),
                    _ => None,
                };
                let next_old =
                    if consumed < hi { old_iter.peek().map(|(t, _)| *t) } else { None };
                match (next_old, next_add) {
                    (None, None) => break,
                    (Some(t), None) => {
                        let (_, v) = old_iter.next().unwrap();
                        consumed += 1;
                        new_targets.push(t);
                        new_values.push(v);
                    }
                    (None, Some(t)) => {
                        let a = add_iter.next().unwrap();
                        // Skip duplicate additions of the same target
                        // (within this vertex's run only).
                        if new_targets.len() > run_start && new_targets.last() == Some(&t) {
                            *new_values.last_mut().unwrap() = a.value;
                        } else {
                            new_targets.push(t);
                            new_values.push(a.value);
                        }
                    }
                    (Some(to), Some(ta)) => {
                        if to < ta {
                            let (_, v) = old_iter.next().unwrap();
                            consumed += 1;
                            new_targets.push(to);
                            new_values.push(v);
                        } else if to == ta {
                            // Overwrite: addition replaces the existing edge.
                            let _ = old_iter.next().unwrap();
                            consumed += 1;
                            let a = add_iter.next().unwrap();
                            new_targets.push(to);
                            new_values.push(a.value);
                        } else {
                            let a = add_iter.next().unwrap();
                            if new_targets.len() > run_start && new_targets.last() == Some(&ta)
                            {
                                *new_values.last_mut().unwrap() = a.value;
                            } else {
                                new_targets.push(ta);
                                new_values.push(a.value);
                            }
                        }
                    }
                }
            }
            new_offsets.push(new_targets.len() as u64);
        }
        self.offsets = new_offsets;
        self.targets = new_targets;
        self.edge_values = new_values;
    }
}

/// Appends one delivered message to its vertex's staging chain (after the
/// program's combiner had a chance to fold it into the chain tail). A free
/// function over the individual buffers — not a `&mut self` method — so the
/// delivery loop can stage while holding a shared borrow of the broadcast
/// fan-out index it is expanding from.
#[allow(clippy::too_many_arguments)]
#[inline]
fn stage_message<P: Program>(
    program: &P,
    staging: &mut Vec<P::M>,
    staging_next: &mut Vec<u32>,
    chain_head: &mut [u32],
    chain_tail: &mut [u32],
    chain_epoch: &mut [u64],
    recipients: &mut Vec<u32>,
    v: usize,
    msg: P::M,
    epoch: u64,
) {
    if chain_epoch[v] == epoch {
        let tail = chain_tail[v] as usize;
        if program.combine(&mut staging[tail], &msg) {
            return;
        }
        let idx = staging.len() as u32;
        staging.push(msg);
        staging_next.push(NIL);
        staging_next[tail] = idx;
        chain_tail[v] = idx;
    } else {
        chain_epoch[v] = epoch;
        recipients.push(v as u32);
        let idx = staging.len() as u32;
        staging.push(msg);
        staging_next.push(NIL);
        chain_head[v] = idx;
        chain_tail[v] = idx;
    }
}
