//! A logical worker: hosts a subset of vertices and executes the compute and
//! delivery phases of each superstep.

use crate::aggregate::{AggValue, AggregatorSpec};
use crate::context::{AggCtx, EdgeAddition, Edges, Mailer, VertexContext};
use crate::metrics::WorkerMetrics;
use crate::program::Program;
use crate::types::WorkerId;
use spinner_graph::VertexId;
use std::time::Instant;

/// One logical worker's vertex store, mailboxes, and per-superstep scratch.
pub struct Worker<P: Program> {
    pub(crate) id: WorkerId,
    /// Local index -> global vertex id.
    pub(crate) global_ids: Vec<VertexId>,
    pub(crate) values: Vec<P::V>,
    pub(crate) halted: Vec<bool>,
    /// Local CSR: `offsets[i]..offsets[i+1]` indexes `targets`/`edge_values`.
    pub(crate) offsets: Vec<u64>,
    pub(crate) targets: Vec<VertexId>,
    pub(crate) edge_values: Vec<P::E>,
    /// Inbox for the current superstep (filled during the previous delivery).
    pub(crate) inbox: Vec<Vec<P::M>>,
    /// Inbox being filled for the next superstep.
    pub(crate) next_inbox: Vec<Vec<P::M>>,
    /// Outboxes indexed by destination worker; drained by the engine.
    pub(crate) outboxes: Vec<Vec<(VertexId, P::M)>>,
    /// Buffered edge additions, applied at the barrier.
    pub(crate) additions: Vec<EdgeAddition<P::E>>,
    /// This superstep's aggregator partials.
    pub(crate) partial_aggs: Vec<AggValue>,
    pub(crate) metrics: WorkerMetrics,
}

impl<P: Program> Worker<P> {
    pub(crate) fn new(id: WorkerId, num_workers: usize) -> Self {
        Self {
            id,
            global_ids: Vec::new(),
            values: Vec::new(),
            halted: Vec::new(),
            offsets: vec![0],
            targets: Vec::new(),
            edge_values: Vec::new(),
            inbox: Vec::new(),
            next_inbox: Vec::new(),
            outboxes: (0..num_workers).map(|_| Vec::new()).collect(),
            additions: Vec::new(),
            partial_aggs: Vec::new(),
            metrics: WorkerMetrics::default(),
        }
    }

    /// Number of vertices hosted here.
    pub fn num_local_vertices(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of halted vertices.
    pub(crate) fn halted_count(&self) -> u64 {
        self.halted.iter().filter(|&&h| h).count() as u64
    }

    /// Executes the compute phase of one superstep over all local vertices.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compute_phase(
        &mut self,
        program: &P,
        global: &P::G,
        snapshot: &[AggValue],
        specs: &[AggregatorSpec],
        worker_of: &[WorkerId],
        superstep: u64,
        seed: u64,
        num_vertices: u64,
    ) {
        let start = Instant::now();
        self.metrics.reset();
        self.partial_aggs = specs.iter().map(|s| s.identity()).collect();
        let mut worker_state = program.init_worker(global, self.id);

        let n_local = self.global_ids.len();
        for i in 0..n_local {
            if self.halted[i] && self.inbox[i].is_empty() {
                continue;
            }
            self.metrics.computed += 1;
            self.halted[i] = false;
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            // Split borrows: every field of the context aliases a distinct
            // part of `self`.
            let mut ctx = VertexContext::<P> {
                superstep,
                vertex: self.global_ids[i],
                num_vertices,
                worker_id: self.id,
                seed,
                global,
                value: &mut self.values[i],
                edges: Edges {
                    targets: &self.targets[lo..hi],
                    values: &mut self.edge_values[lo..hi],
                },
                worker: &mut worker_state,
                mail: Mailer {
                    outboxes: &mut self.outboxes,
                    worker_of,
                    my_worker: self.id,
                    sent_local: &mut self.metrics.sent_local,
                    sent_remote: &mut self.metrics.sent_remote,
                },
                agg: AggCtx { partial: &mut self.partial_aggs, snapshot },
                halted: &mut self.halted[i],
                additions: &mut self.additions,
                local_idx: i as u32,
            };
            // Temporarily take the inbox to avoid aliasing it from the ctx.
            let msgs = std::mem::take(&mut self.inbox[i]);
            program.compute(&mut ctx, &msgs);
            // Reuse the allocation next superstep.
            let mut msgs = msgs;
            msgs.clear();
            self.inbox[i] = msgs;
        }
        self.metrics.compute_ns = start.elapsed().as_nanos() as u64;
    }

    /// Delivery phase: drains messages addressed to this worker into
    /// `next_inbox`, applying the program's combiner.
    pub(crate) fn deliver_phase(
        &mut self,
        program: &P,
        incoming: crate::types::Mailbag<P::M>,
        local_idx: &[u32],
    ) {
        for (src_worker, batch) in incoming {
            let local = src_worker == self.id;
            for (target, msg) in batch {
                if local {
                    self.metrics.recv_local += 1;
                } else {
                    self.metrics.recv_remote += 1;
                }
                let slot = &mut self.next_inbox[local_idx[target as usize] as usize];
                if let Some(acc) = slot.last_mut() {
                    if program.combine(acc, &msg) {
                        continue;
                    }
                }
                slot.push(msg);
            }
        }
    }

    /// Barrier work: swap inboxes and wake vertices that received messages.
    pub(crate) fn finish_superstep(&mut self) {
        std::mem::swap(&mut self.inbox, &mut self.next_inbox);
        for (i, msgs) in self.inbox.iter().enumerate() {
            if !msgs.is_empty() {
                self.halted[i] = false;
            }
        }
    }

    /// Applies buffered edge additions, keeping each adjacency run sorted and
    /// duplicate-free (a re-added edge overwrites the existing value).
    pub(crate) fn apply_mutations(&mut self) {
        if self.additions.is_empty() {
            return;
        }
        let mut additions = std::mem::take(&mut self.additions);
        additions.sort_by_key(|a| (a.local_src, a.target));

        let n_local = self.global_ids.len();
        let mut new_offsets = Vec::with_capacity(n_local + 1);
        let mut new_targets = Vec::with_capacity(self.targets.len() + additions.len());
        let mut new_values: Vec<P::E> = Vec::with_capacity(new_targets.capacity());
        new_offsets.push(0u64);

        let mut add_iter = additions.into_iter().peekable();
        // Drain the old parallel arrays through owned iterators so values
        // move without cloning.
        let old_targets = std::mem::take(&mut self.targets);
        let old_values = std::mem::take(&mut self.edge_values);
        let mut old_iter = old_targets.into_iter().zip(old_values).peekable();

        for i in 0..n_local {
            let hi = self.offsets[i + 1];
            let mut consumed = self.offsets[i];
            let run_start = new_targets.len();
            // Merge the sorted old run with the sorted additions for vertex i.
            loop {
                let next_add = match add_iter.peek() {
                    Some(a) if a.local_src == i as u32 => Some(a.target),
                    _ => None,
                };
                let next_old =
                    if consumed < hi { old_iter.peek().map(|(t, _)| *t) } else { None };
                match (next_old, next_add) {
                    (None, None) => break,
                    (Some(t), None) => {
                        let (_, v) = old_iter.next().unwrap();
                        consumed += 1;
                        new_targets.push(t);
                        new_values.push(v);
                    }
                    (None, Some(t)) => {
                        let a = add_iter.next().unwrap();
                        // Skip duplicate additions of the same target
                        // (within this vertex's run only).
                        if new_targets.len() > run_start && new_targets.last() == Some(&t) {
                            *new_values.last_mut().unwrap() = a.value;
                        } else {
                            new_targets.push(t);
                            new_values.push(a.value);
                        }
                    }
                    (Some(to), Some(ta)) => {
                        if to < ta {
                            let (_, v) = old_iter.next().unwrap();
                            consumed += 1;
                            new_targets.push(to);
                            new_values.push(v);
                        } else if to == ta {
                            // Overwrite: addition replaces the existing edge.
                            let _ = old_iter.next().unwrap();
                            consumed += 1;
                            let a = add_iter.next().unwrap();
                            new_targets.push(to);
                            new_values.push(a.value);
                        } else {
                            let a = add_iter.next().unwrap();
                            if new_targets.len() > run_start && new_targets.last() == Some(&ta)
                            {
                                *new_values.last_mut().unwrap() = a.value;
                            } else {
                                new_targets.push(ta);
                                new_values.push(a.value);
                            }
                        }
                    }
                }
            }
            new_offsets.push(new_targets.len() as u64);
        }
        self.offsets = new_offsets;
        self.targets = new_targets;
        self.edge_values = new_values;
    }
}
