//! Umbrella crate for the Spinner reproduction suite: re-exports the
//! workspace crates so examples and integration tests can use one import
//! root. See `spinner_core` for the partitioner itself.

pub use spinner_baselines as baselines;
pub use spinner_core as core;
pub use spinner_graph as graph;
pub use spinner_metrics as metrics;
pub use spinner_pregel as pregel;
