//! Umbrella crate for the Spinner reproduction suite: re-exports the
//! workspace crates so examples and integration tests can use one import
//! root. See `spinner_core` for the partitioner itself.
//!
//! Most programs only need [`prelude`]:
//!
//! ```
//! use spinner::prelude::*;
//!
//! let graph = GraphBuilder::new(10).add_edges([(0, 1), (1, 2)]).build();
//! let session = StreamSession::new(graph, SpinnerConfig::new(2));
//! assert_eq!(session.windows().len(), 1);
//! ```

pub use spinner_baselines as baselines;
pub use spinner_core as core;
pub use spinner_graph as graph;
pub use spinner_metrics as metrics;
pub use spinner_pregel as pregel;
pub use spinner_serving as serving;

/// The one-import surface for typical Spinner programs: build a graph,
/// partition it (one-shot or streaming), inspect quality, and serve the
/// resulting placement online.
///
/// Everything here is a re-export; the canonical homes (`spinner::core`,
/// `spinner::graph`, …) remain available for less common items.
pub mod prelude {
    pub use spinner_core::{
        adapt, elastic, partition, PartitionResult, SessionState, SpinnerConfig, StreamEvent,
        StreamSession, WindowReport,
    };
    pub use spinner_graph::{
        DirectedGraph, GraphBuilder, GraphDelta, UndirectedGraph, VertexId,
    };
    pub use spinner_metrics::Trajectory;
    pub use spinner_pregel::{
        LaneHealth, Placement, RetryConfig, TransportFault, TransportFaultPlan, TransportKind,
        WireFormat, WorkerId,
    };
    pub use spinner_serving::{
        Fault, FaultPlan, FaultyStorage, Health, Lookup, MemStorage, RetryPolicy,
        RoutingReader, RoutingTable, ServingNode, SessionPersist, SessionStore, Storage,
    };
}
