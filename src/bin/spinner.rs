//! Command-line Spinner: partition an edge-list file.
//!
//! ```text
//! spinner <edges.txt> --k 32 [--c 1.05] [--seed 1] [--undirected]
//!         [--max-iterations 300] [--output labels.txt]
//! ```
//!
//! The input is a whitespace-separated `src dst` edge list (`#`/`%`
//! comments allowed). Directed inputs go through the paper's Eq. 3
//! conversion; pass `--undirected` when each line already denotes an
//! undirected edge. The output is one `vertex partition` pair per line —
//! the format §V-F feeds into Giraph.

use spinner_core::{partition, SpinnerConfig};
use spinner_graph::conversion::{from_undirected_edges, to_weighted_undirected};
use spinner_graph::io::{read_edge_list_file, write_assignment};
use std::process::ExitCode;

struct Args {
    input: String,
    output: Option<String>,
    k: u32,
    c: f64,
    seed: u64,
    max_iterations: u32,
    undirected: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: spinner <edges.txt> --k <partitions> [--c 1.05] [--seed 1]\n\
         \x20             [--max-iterations 300] [--undirected] [--output labels.txt]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        input: String::new(),
        output: None,
        k: 0,
        c: 1.05,
        seed: 1,
        max_iterations: 300,
        undirected: false,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--k" => args.k = value(&mut it, "--k").parse().unwrap_or_else(|_| usage()),
            "--c" => args.c = value(&mut it, "--c").parse().unwrap_or_else(|_| usage()),
            "--seed" => {
                args.seed = value(&mut it, "--seed").parse().unwrap_or_else(|_| usage())
            }
            "--max-iterations" => {
                args.max_iterations =
                    value(&mut it, "--max-iterations").parse().unwrap_or_else(|_| usage())
            }
            "--output" => args.output = Some(value(&mut it, "--output")),
            "--undirected" => args.undirected = true,
            "--help" | "-h" => usage(),
            other if args.input.is_empty() && !other.starts_with('-') => {
                args.input = other.to_string()
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    if args.input.is_empty() || args.k == 0 {
        usage()
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let directed = match read_edge_list_file(&args.input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error reading {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} vertices, {} edges",
        args.input,
        directed.num_vertices(),
        directed.num_edges()
    );
    let graph = if args.undirected {
        from_undirected_edges(&directed)
    } else {
        to_weighted_undirected(&directed)
    };

    let mut cfg = SpinnerConfig::new(args.k).with_seed(args.seed).with_c(args.c);
    cfg.max_iterations = args.max_iterations;
    let result = partition(&graph, &cfg);
    eprintln!(
        "partitioned into k={}: phi={:.4} rho={:.4} ({} iterations, {:.1}s)",
        args.k,
        result.quality.phi,
        result.quality.rho,
        result.iterations,
        result.wall_ns as f64 * 1e-9
    );

    let write = |w: &mut dyn std::io::Write| write_assignment(&result.labels, w);
    let out = match &args.output {
        Some(path) => std::fs::File::create(path)
            .map_err(spinner_graph::GraphError::from)
            .and_then(|mut f| write(&mut f)),
        None => write(&mut std::io::stdout().lock()),
    };
    if let Err(e) = out {
        eprintln!("error writing output: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
