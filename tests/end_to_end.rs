//! Cross-crate integration tests: the full pipeline from generator through
//! conversion, partitioning, and application execution on the Pregel engine.

use spinner::core::partition_directed;
use spinner::graph::conversion::{from_undirected_edges, to_weighted_undirected};
use spinner::graph::{Dataset, Scale};
use spinner::pregel::algorithms::{run_pagerank, run_wcc};
use spinner::pregel::sim::CostModel;
use spinner::pregel::EngineConfig;
use spinner::prelude::*;

fn cfg(k: u32) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(42);
    cfg.num_workers = 8;
    cfg.max_iterations = 80;
    cfg
}

/// Every dataset analogue partitions with better locality than hash and
/// bounded unbalance.
#[test]
fn all_datasets_beat_hash_partitioning() {
    for d in Dataset::ALL {
        let g = d.build_undirected(Scale::Tiny);
        let k = 8;
        let r = partition(&g, &cfg(k));
        let hash = spinner_baselines::hash_partition(g.num_vertices(), k, 7);
        let phi_hash = spinner_metrics::phi(&g, &hash);
        assert!(
            r.quality.phi > 1.5 * phi_hash,
            "{}: spinner {} vs hash {}",
            d.short_name(),
            r.quality.phi,
            phi_hash
        );
        assert!(r.quality.rho < 1.6, "{}: rho {}", d.short_name(), r.quality.rho);
        // Labels are a valid k-way assignment.
        assert_eq!(r.labels.len(), g.num_vertices() as usize);
        assert!(r.labels.iter().all(|&l| l < k));
        // Loads reported by the result must sum to the total weight.
        assert_eq!(r.quality.loads.iter().sum::<u64>(), g.total_weight());
    }
}

/// Spinner placement reduces simulated cluster time and network traffic for
/// a real application run.
#[test]
fn spinner_placement_speeds_up_pagerank() {
    let d = Dataset::LiveJournal.build_directed(Scale::Tiny);
    let g = to_weighted_undirected(&d);
    let k = 8u32;
    let r = partition(&g, &cfg(k));

    let engine =
        EngineConfig { num_threads: 4, max_supersteps: 1000, seed: 3, ..Default::default() };
    let hash = Placement::hashed(d.num_vertices(), k as usize, 5);
    let spin = Placement::from_labels_balanced(&r.labels, k as usize);
    let (ranks_hash, m_hash) = run_pagerank(&d, &hash, engine.clone(), 10);
    let (ranks_spin, m_spin) = run_pagerank(&d, &spin, engine, 10);

    // Placement must not change the numerical result.
    for (a, b) in ranks_hash.iter().zip(&ranks_spin) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
    let remote_hash: u64 = m_hash.metrics.iter().map(|m| m.sent_remote()).sum();
    let remote_spin: u64 = m_spin.metrics.iter().map(|m| m.sent_remote()).sum();
    assert!(
        (remote_spin as f64) < 0.7 * remote_hash as f64,
        "remote traffic {remote_spin} vs {remote_hash}"
    );
    let cost = CostModel::default();
    let t_hash = cost.total_seconds(&m_hash.metrics);
    let t_spin = cost.total_seconds(&m_spin.metrics);
    assert!(t_spin < t_hash, "simulated {t_spin} vs {t_hash}");
}

/// WCC on a disconnected planted graph finds exactly the planted components,
/// regardless of the placement used.
#[test]
fn wcc_is_placement_independent() {
    // Two disconnected SBM halves.
    let mut builder = spinner_graph::GraphBuilder::new(200);
    for base in [0u32, 100] {
        for i in 0..99 {
            builder.add_edge(base + i, base + i + 1);
        }
    }
    let g = from_undirected_edges(&builder.build());
    let engine =
        EngineConfig { num_threads: 2, max_supersteps: 1000, seed: 1, ..Default::default() };
    let (a, _) = run_wcc(&g, &Placement::hashed(200, 4, 1), engine.clone());
    let (b, _) = run_wcc(&g, &Placement::contiguous(200, 4), engine);
    assert_eq!(a, b);
    assert!(a[..100].iter().all(|&c| c == 0));
    assert!(a[100..].iter().all(|&c| c == 100));
}

/// The faithful in-engine conversion path (NeighborPropagation /
/// NeighborDiscovery supersteps) agrees with the offline conversion on every
/// directed dataset analogue.
#[test]
fn in_engine_conversion_matches_offline_on_datasets() {
    for d in [Dataset::LiveJournal, Dataset::Yahoo] {
        let directed = d.build_directed(Scale::Tiny);
        let mut c = cfg(4);
        c.max_iterations = 10;
        c.ignore_halting = true;
        let offline = partition_directed(&directed, &c);
        c.in_engine_conversion = true;
        let in_engine = partition_directed(&directed, &c);
        assert_eq!(offline.labels, in_engine.labels, "{} conversion mismatch", d.short_name());
    }
}

/// Determinism across thread counts holds for the full pipeline.
#[test]
fn pipeline_is_thread_deterministic() {
    let g = Dataset::GooglePlus.build_undirected(Scale::Tiny);
    let mut c1 = cfg(8);
    c1.num_threads = 1;
    let mut c2 = cfg(8);
    c2.num_threads = 16;
    let a = partition(&g, &c1);
    let b = partition(&g, &c2);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.iterations, b.iterations);
    for (ha, hb) in a.history.iter().zip(&b.history) {
        assert_eq!(ha, hb);
    }
}
