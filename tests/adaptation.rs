//! Integration tests for incremental (§III-D) and elastic (§III-E)
//! repartitioning — the paper's Figs. 7 and 8 at test scale.

use spinner::graph::conversion::from_undirected_edges;
use spinner::graph::generators::{planted_partition, SbmConfig};
use spinner::graph::mutation::{apply_delta, sample_new_edges};
use spinner::graph::{DeltaStream, DeltaStreamConfig};
use spinner::metrics::partitioning_difference;
use spinner::prelude::*;

fn base_graph() -> spinner_graph::DirectedGraph {
    planted_partition(SbmConfig {
        n: 4000,
        communities: 8,
        internal_degree: 10.0,
        external_degree: 2.0,
        skew: None,
        seed: 5,
    })
}

fn cfg(k: u32) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(42);
    cfg.num_workers = 8;
    cfg
}

/// Fig. 7 shape: adapting to a small change saves messages relative to a
/// from-scratch repartitioning and moves far fewer vertices.
#[test]
fn incremental_adaptation_saves_work_and_movement() {
    let edges = base_graph();
    let g = from_undirected_edges(&edges);
    let k = 8;
    let initial = partition(&g, &cfg(k));

    let new_edges = sample_new_edges(&edges, 400, 0.8, 17); // ~1% new edges
    let changed = apply_delta(&edges, &GraphDelta::additions(new_edges));
    let g2 = from_undirected_edges(&changed);

    let adapted = adapt(&g2, &initial.labels, &cfg(k));
    let scratch = partition(&g2, &cfg(k).with_seed(777));

    // Savings in iterations and messages.
    assert!(
        adapted.iterations * 2 <= scratch.iterations + 1,
        "adapted {} vs scratch {} iterations",
        adapted.iterations,
        scratch.iterations
    );
    assert!(
        (adapted.totals.messages as f64) < 0.7 * scratch.totals.messages as f64,
        "messages {} vs {}",
        adapted.totals.messages,
        scratch.totals.messages
    );
    // Stability: few vertices move vs nearly all from scratch.
    let moved_adapt = partitioning_difference(&initial.labels, &adapted.labels);
    let moved_scratch = partitioning_difference(&initial.labels, &scratch.labels);
    assert!(moved_adapt < 0.3, "moved {moved_adapt}");
    assert!(moved_scratch > 0.6, "scratch moved {moved_scratch}");
    // Quality comparable to scratch.
    assert!(adapted.quality.phi > scratch.quality.phi - 0.1);
    assert!(adapted.quality.rho < 1.2);
}

/// New vertices join the least-loaded partitions and get labels.
#[test]
fn adapt_handles_new_vertices() {
    let edges = base_graph();
    let g = from_undirected_edges(&edges);
    let k = 8;
    let initial = partition(&g, &cfg(k));

    // 100 new vertices, each friending 3 random existing ones.
    let n0 = edges.num_vertices();
    let mut new_edges = Vec::new();
    let mut rng = spinner_graph::rng::SplitMix64::new(31);
    for i in 0..100u32 {
        for _ in 0..3 {
            new_edges.push((n0 + i, rng.next_bounded(n0 as u64) as u32));
        }
    }
    let changed = apply_delta(
        &edges,
        &GraphDelta { added_edges: new_edges, removed_edges: vec![], new_vertices: 100 },
    );
    let g2 = from_undirected_edges(&changed);
    let adapted = adapt(&g2, &initial.labels, &cfg(k));
    assert_eq!(adapted.labels.len(), (n0 + 100) as usize);
    assert!(adapted.labels.iter().all(|&l| l < k));
    assert!(adapted.quality.rho < 1.2, "rho {}", adapted.quality.rho);
}

/// Fig. 8 shape: elastic growth moves roughly n/(k+n) of the vertices (plus
/// settle-in migrations), far less than scratch.
#[test]
fn elastic_growth_moves_expected_fraction() {
    let g = from_undirected_edges(&base_graph());
    let old_k = 8;
    let initial = partition(&g, &cfg(old_k));

    for n_new in [1u32, 4] {
        let new_k = old_k + n_new;
        let grown = elastic(&g, &initial.labels, old_k, &cfg(new_k));
        let moved = partitioning_difference(&initial.labels, &grown.labels);
        let eq11 = n_new as f64 / new_k as f64;
        assert!(moved < eq11 + 0.35, "+{n_new}: moved {moved} vs Eq.11 baseline {eq11}");
        assert!(grown.quality.loads.iter().all(|&l| l > 0), "+{n_new}: empty partition");
        let scratch = partition(&g, &cfg(new_k).with_seed(99));
        let moved_scratch = partitioning_difference(&initial.labels, &scratch.labels);
        assert!(moved < moved_scratch, "+{n_new}: {moved} vs scratch {moved_scratch}");
    }
}

/// The elastic *shrink* path mid-stream: a warm session that loses
/// partitions between delta windows must redistribute the evicted vertices,
/// stay balanced, move far less than a from-scratch repartitioning, and keep
/// its warm fabric through the shrink.
#[test]
fn stream_shrinks_partitions_mid_stream() {
    let base = base_graph();
    let mut session = StreamSession::new(base.clone(), cfg(8));
    let mut deltas = DeltaStream::new(
        base,
        DeltaStreamConfig { windows: 3, seed: 31, ..DeltaStreamConfig::default() },
    );

    session.apply(StreamEvent::Delta(deltas.next().expect("window")));
    let before_shrink = session.labels().to_vec();

    // k: 8 -> 5 while the stream is live.
    let report = session.apply(StreamEvent::Resize { k: 5 }).clone();
    assert_eq!(report.k(), 5);
    assert_eq!(session.k(), 5);
    assert!(session.labels().iter().all(|&l| l < 5));
    let mut loads = [0u64; 5];
    for &l in session.labels() {
        loads[l as usize] += 1;
    }
    assert!(loads.iter().all(|&l| l > 0), "empty partition after shrink: {loads:?}");
    assert!(report.rho() < 1.25, "rho {}", report.rho());
    // Vertices of surviving partitions mostly keep their label...
    let kept =
        before_shrink.iter().zip(session.labels()).filter(|&(&a, &b)| a < 5 && a == b).count()
            as f64;
    let survivors = before_shrink.iter().filter(|&&a| a < 5).count() as f64;
    assert!(kept / survivors > 0.5, "kept fraction {}", kept / survivors);
    // ...and the shrink moves far less than repartitioning from scratch.
    let scratch = partition(&from_undirected_edges(session.graph()), &cfg(5).with_seed(777));
    let moved_scratch = partitioning_difference(&before_shrink, &scratch.labels);
    assert!(
        report.migration_fraction() < moved_scratch,
        "shrink moved {} vs scratch {moved_scratch}",
        report.migration_fraction()
    );

    // The stream continues warm after the shrink: no fabric growth, valid
    // labels over the grown vertex set.
    let next = session.apply(StreamEvent::Delta(deltas.next().expect("window"))).clone();
    assert_eq!(next.fabric_reallocs(), 0, "fabric grew after mid-stream shrink");
    assert_eq!(session.labels().len(), session.undirected().num_vertices() as usize);
    assert!(session.labels().iter().all(|&l| l < 5));
    assert!(
        next.migration_fraction() < 0.4,
        "post-shrink window moved {}",
        next.migration_fraction()
    );
}

/// Shrinking removes the high labels and redistributes their vertices.
#[test]
fn elastic_shrink_redistributes() {
    let g = from_undirected_edges(&base_graph());
    let initial = partition(&g, &cfg(8));
    let shrunk = elastic(&g, &initial.labels, 8, &cfg(5));
    assert!(shrunk.labels.iter().all(|&l| l < 5));
    assert!(shrunk.quality.rho < 1.25, "rho {}", shrunk.quality.rho);
    // Vertices that stayed in surviving partitions mostly keep their label.
    let kept =
        initial.labels.iter().zip(&shrunk.labels).filter(|&(&a, &b)| a < 5 && a == b).count()
            as f64;
    let survivors = initial.labels.iter().filter(|&&a| a < 5).count() as f64;
    assert!(kept / survivors > 0.5, "kept fraction {}", kept / survivors);
}
