//! The umbrella crate's re-exports (`spinner::core`, `spinner::graph`,
//! `spinner::pregel`, `spinner::metrics`, `spinner::baselines`) must
//! resolve and interoperate: types produced through one re-export are
//! accepted by functions reached through another.

use spinner::{baselines, core, graph, metrics, pregel};

#[test]
fn reexports_resolve_and_interoperate() {
    let directed = graph::generators::erdos_renyi(500, 2_000, 7);
    let g = graph::conversion::to_weighted_undirected(&directed);

    let k = 4u32;
    let r = core::partition(&g, &core::SpinnerConfig::new(k).with_seed(1));
    assert_eq!(r.labels.len(), g.num_vertices() as usize);
    assert!(r.labels.iter().all(|&l| l < k));

    let phi = metrics::phi(&g, &r.labels);
    assert!((0.0..=1.0).contains(&phi));
    assert_eq!(
        metrics::partition_loads(&g, &r.labels, k).iter().sum::<u64>(),
        g.total_weight()
    );

    let hash = baselines::hash_partition(g.num_vertices(), k, 7);
    assert_eq!(hash.len(), r.labels.len());

    let placement = pregel::Placement::from_labels_balanced(&r.labels, k as usize);
    assert_eq!(placement.num_workers(), k as usize);
}

#[test]
fn umbrella_paths_name_the_same_types_as_the_crates() {
    // A config built via the umbrella path is exactly the underlying
    // crate's type, not a wrapper.
    let cfg: spinner_core::SpinnerConfig = spinner::core::SpinnerConfig::new(3);
    assert_eq!(cfg.k, 3);
    let label: spinner_core::Label = spinner::core::NO_LABEL;
    assert_eq!(label, spinner_core::NO_LABEL);
}

#[test]
fn prelude_names_the_same_types_and_covers_the_common_path() {
    use spinner::prelude::*;

    // Prelude items are the canonical types, not shadows.
    let cfg: spinner_core::SpinnerConfig = SpinnerConfig::new(2).with_seed(3);
    let g: spinner_graph::DirectedGraph =
        GraphBuilder::new(60).add_edges((0..60).map(|v| (v, (v + 1) % 60))).build();

    // Build → stream → serve, entirely through the prelude surface.
    let session = StreamSession::new(g, cfg);
    let report: &WindowReport = &session.windows()[0];
    assert!(report.phi().is_finite());
    let node = ServingNode::new(session);
    let reader: RoutingReader = node.reader();
    let hit: Lookup = reader.lookup(0).expect("bootstrap epoch published");
    let worker: WorkerId = hit.worker();
    assert_eq!(worker, node.session().placement().as_slice()[0]);

    // The serving crate is also reachable as `spinner::serving`.
    let _table: spinner::serving::RoutingTable = RoutingTable::new();
}

#[test]
fn prelude_covers_the_fault_tolerance_path() {
    use spinner::prelude::*;
    use std::time::Duration;

    // Build a small session and persist it through a storage medium that
    // dies at the first WAL append — all through prelude names.
    let g = GraphBuilder::new(40).add_edges((0..40).map(|v| (v, (v + 1) % 40))).build();
    let session = StreamSession::new(g, SpinnerConfig::new(2).with_seed(5));
    let disk: MemStorage = MemStorage::new();
    let plan: FaultPlan = FaultPlan::new().fail(2, Fault::Full).fail(3, Fault::Full);
    let faulty: FaultyStorage<MemStorage> = FaultyStorage::new(disk.clone(), plan);
    let mut node = ServingNode::with_storage(session, Box::new(faulty))
        .expect("bootstrap checkpoint")
        .with_retry_policy(RetryPolicy {
            attempts: 2,
            base_backoff: Duration::ZERO,
            max_degraded_windows: 4,
        });
    assert_eq!(node.health(), Health::Healthy);
    let report =
        node.ingest(StreamEvent::Delta(GraphDelta::default())).expect("degrade, not die");
    assert_eq!(report.health(), Health::Degraded);

    // `Storage` itself is nameable for generic code.
    fn wal_bytes<S: Storage>(s: &mut S) -> usize {
        s.read(spinner::serving::StoreFile::Wal).ok().flatten().map_or(0, |b| b.len())
    }
    let mut medium = disk.clone();
    assert_eq!(wal_bytes(&mut medium), 0, "both append attempts failed");
}

#[test]
fn prelude_covers_the_transport_resilience_path() {
    use spinner::prelude::*;

    // Prelude names are the canonical pregel types, not shadows.
    let retry: spinner_pregel::RetryConfig = RetryConfig::default();
    assert!(retry.reliable, "reliability layer is on by default");
    let health: spinner_pregel::LaneHealth = LaneHealth::default();
    assert_eq!(health, LaneHealth::Healthy);

    // Script a recoverable fault plan and drive a chaos window through the
    // session surface, entirely via prelude names.
    let plan: spinner_pregel::TransportFaultPlan =
        TransportFaultPlan::new().fail(0, 1, 0, TransportFault::Drop);
    let mut cfg = SpinnerConfig::new(2).with_seed(9);
    cfg.num_workers = 2;
    cfg.transport = TransportKind::Ring;
    let g = GraphBuilder::new(40).add_edges((0..40).map(|v| (v, (v + 1) % 40))).build();
    let mut session = StreamSession::new(g, cfg);
    session.inject_transport_faults(plan);
    let report = session.apply(StreamEvent::Delta(GraphDelta::default()));
    assert!(!report.is_recovery(), "a dropped frame is retransmitted, not escalated");
    let (injected, remaining) = session.transport_chaos_counts();
    assert_eq!((injected, remaining), (1, 0), "the scripted fault fired");
}
