//! Streaming-session determinism: the warm multi-window driver must produce
//! bit-identical label histories across thread counts (always) and across
//! logical-worker counts (when the §IV-A4 asynchronous load view — which is
//! worker-topology-dependent by design — is disabled). This extends the
//! engine-level `fabric_grid` guarantee to multi-window stateful runs
//! through warm resets, elastic resizes, and graph deltas.

use spinner::graph::generators::{planted_partition, SbmConfig};
use spinner::graph::{DeltaStream, DeltaStreamConfig};
use spinner::prelude::*;

fn base_graph() -> DirectedGraph {
    planted_partition(SbmConfig {
        n: 1500,
        communities: 4,
        internal_degree: 8.0,
        external_degree: 1.5,
        skew: None,
        seed: 11,
    })
}

/// Everything a session exposes that must match across the grid: final
/// labels plus the per-window integer/quality history. Wall-clock is
/// excluded; φ/ρ/migration fractions are compared bit-for-bit via raw bits.
/// `(k, iterations, supersteps, messages, num_edges, num_vertices,
/// phi_bits, rho_bits)` per window.
type WindowDigest = (u32, u32, u64, u64, u64, u32, u64, u64);

#[derive(Debug, PartialEq)]
struct SessionTrace {
    labels: Vec<u32>,
    windows: Vec<WindowDigest>,
}

fn run_session(num_workers: usize, num_threads: usize, async_loads: bool) -> SessionTrace {
    let base = base_graph();
    let mut cfg = SpinnerConfig::new(4).with_seed(17);
    cfg.num_workers = num_workers;
    cfg.num_threads = num_threads;
    cfg.max_iterations = 60;
    cfg.async_worker_loads = async_loads;

    let mut deltas = DeltaStream::new(
        base.clone(),
        DeltaStreamConfig {
            windows: 4,
            add_fraction: 0.02,
            remove_fraction: 0.01,
            vertex_fraction: 0.01,
            seed: 23,
            ..DeltaStreamConfig::default()
        },
    );
    let mut session = StreamSession::new(base, cfg);
    session.apply(StreamEvent::Delta(deltas.next().expect("window")));
    session.apply(StreamEvent::Resize { k: 6 });
    session.apply(StreamEvent::Delta(deltas.next().expect("window")));
    session.apply(StreamEvent::Delta(deltas.next().expect("window")));
    session.apply(StreamEvent::Resize { k: 3 });
    session.apply(StreamEvent::Delta(deltas.next().expect("window")));

    SessionTrace {
        labels: session.labels().to_vec(),
        windows: session
            .windows()
            .iter()
            .map(|w| {
                (
                    w.k(),
                    w.iterations(),
                    w.supersteps(),
                    w.messages(),
                    w.num_edges(),
                    w.num_vertices(),
                    w.phi().to_bits(),
                    w.rho().to_bits(),
                )
            })
            .collect(),
    }
}

/// Thread counts never change results — the full (async-view) configuration
/// included.
#[test]
fn stream_identical_across_thread_counts() {
    let reference = run_session(8, 1, true);
    assert_eq!(reference.windows.len(), 7, "bootstrap + six stream windows");
    for threads in [2usize, 4, 8] {
        let trace = run_session(8, threads, true);
        assert_eq!(trace, reference, "diverged at num_threads={threads}");
    }
}

/// With the asynchronous per-worker load view disabled, the computation is
/// fully synchronous and the logical worker count is pure plumbing: any
/// workers x threads combination yields the same stream history.
#[test]
fn stream_identical_across_worker_grid_when_synchronous() {
    let reference = run_session(1, 1, false);
    for &(workers, threads) in &[(2usize, 1usize), (3, 2), (4, 4), (7, 3), (8, 8)] {
        let trace = run_session(workers, threads, false);
        assert_eq!(trace, reference, "diverged at num_workers={workers} num_threads={threads}");
    }
}
