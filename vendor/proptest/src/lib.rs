//! In-tree stand-in for the `proptest` property-testing framework.
//!
//! Implements the subset of the proptest 1.x API the workspace's tests
//! use: the `proptest!` macro (with `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, integer-range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::Index`, and
//! `any::<T>()`. Cases are generated from a deterministic per-test seed so
//! failures reproduce exactly; there is no shrinking — a failure reports
//! the case number and the generated inputs instead. See
//! `vendor/README.md` for the full list of differences.

pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The strategy for an [`Arbitrary`] type's canonical value distribution.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Types with a canonical strategy, usable with [`any`].
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: strategy::Strategy<Value = Self>;
    /// Returns the canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The conventional glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access to strategy modules (`prop::collection`,
    /// `prop::sample`, ...), as the real prelude provides.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: `{:?}`\n right: `{:?}`\n{}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}` (both `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]`-style function (the `#[test]` attribute is
/// written by the caller, as with the real macro) that runs the body over
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands the individual test functions for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(test_path, case as u64);
                let mut inputs = ::std::string::String::new();
                $(
                    let value =
                        $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    {
                        use ::std::fmt::Write as _;
                        let _ = ::std::write!(
                            inputs,
                            "{} = {:?}; ",
                            stringify!($pat),
                            &value
                        );
                    }
                    let $pat = value;
                )+
                let outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest failed for {} at case {}/{}\ninputs: {}\n{}",
                        test_path,
                        case,
                        config.cases,
                        inputs,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
