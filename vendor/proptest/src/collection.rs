//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The size bounds for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self { start: r.start, end: r.end.max(r.start + 1) }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { start: n, end: n + 1 }
    }
}

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::deterministic("collection", 0);
        let strat = vec(0u32..100, 2..5);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn empty_capable_range() {
        let mut rng = TestRng::deterministic("collection", 1);
        let strat = vec(0u32..10, 0..3);
        let mut saw_empty = false;
        for _ in 0..100 {
            if strat.sample(&mut rng).is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty);
    }
}
