//! Range strategies for the primitive integer types, plus `Arbitrary`
//! implementations for them.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use crate::Arbitrary;
use std::ops::{Range, RangeInclusive};

/// Full-range strategy for an integer type (what `any::<iN/uN>()` uses).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! int_strategies {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy {start}..={end}");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    // Span 0 means the full u64 domain (u64::MIN..=u64::MAX).
                    if span == 0 {
                        rng.next_u64() as $t
                    } else {
                        (start as i128 + rng.below(span) as i128) as $t
                    }
                }
            }

            impl Strategy for AnyInt<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )+
    };
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy yielding both booleans (what `any::<bool>()` uses).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("num", 0);
        for _ in 0..500 {
            let v = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (3u64..=3).sample(&mut rng);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn any_int_covers_domain() {
        let mut rng = TestRng::deterministic("num", 1);
        let mut seen_large = false;
        for _ in 0..100 {
            if any::<u64>().sample(&mut rng) > u64::MAX / 2 {
                seen_large = true;
            }
        }
        assert!(seen_large);
    }
}
