//! Case execution support: configuration, deterministic RNG, and the
//! error type produced by `prop_assert!`.

use std::fmt;

/// Runner configuration; only `cases` is honoured by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property-test case (produced by the `prop_assert!` family).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 RNG seeded from the test path and case index,
/// so every CI run generates identical cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test at `test_path`.
    pub fn deterministic(test_path: &str, case: u64) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded draw (Lemire); bias is negligible for
        // test-generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_path_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("mod::test", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("mod::test", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::deterministic("mod::test", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::deterministic("bound", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
