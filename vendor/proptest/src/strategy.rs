//! The [`Strategy`] trait and generic combinator strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// simply samples a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_and_map() {
        let mut rng = TestRng::deterministic("strategy", 0);
        assert_eq!(Just(41).sample(&mut rng), 41);
        assert_eq!(Just(20).prop_map(|x| x * 2).sample(&mut rng), 40);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::deterministic("strategy", 1);
        let (a, b) = (0u32..10, 5u64..6).sample(&mut rng);
        assert!(a < 10);
        assert_eq!(b, 5);
    }
}
