//! Sampling helpers (`prop::sample::Index`).

use crate::num::AnyInt;
use crate::strategy::Strategy;
use crate::Arbitrary;

/// An abstract index into a slice of then-unknown length, as in proptest:
/// generated independently of any collection, then projected onto one with
/// [`Index::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Projects the abstract index onto `slice`.
    ///
    /// # Panics
    /// Panics if `slice` is empty.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "Index::get on empty slice");
        &slice[self.index(slice.len())]
    }

    /// The concrete index for a collection of `len` elements.
    pub fn index(&self, len: usize) -> usize {
        self.0 % len
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;

    fn arbitrary() -> Self::Strategy {
        IndexStrategy(AnyInt::default())
    }
}

/// Strategy behind `any::<Index>()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStrategy(AnyInt<usize>);

impl Strategy for IndexStrategy {
    type Value = Index;

    fn sample(&self, rng: &mut crate::test_runner::TestRng) -> Index {
        Index(self.0.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;
    use crate::test_runner::TestRng;

    #[test]
    fn index_projects_in_bounds() {
        let mut rng = TestRng::deterministic("sample", 0);
        let data = [10, 20, 30];
        for _ in 0..100 {
            let idx = any::<Index>().sample(&mut rng);
            assert!(data.contains(idx.get(&data)));
        }
    }
}
