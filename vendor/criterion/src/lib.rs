//! In-tree stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API that the workspace's
//! benches use (`Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`/`criterion_main!`, `black_box`) with simple
//! wall-clock median timing and one-line text output. See
//! `vendor/README.md` for why this exists and how it differs from the
//! real crate.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of abstract elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id as a display string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    /// Times `routine`, recording `sample_count` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call (also seeds any lazy state).
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    fn median(&self) -> Option<Duration> {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return None;
        }
        s.sort_unstable();
        Some(s[s.len() / 2])
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    fn run(&self, id: String, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut b);
        match b.median() {
            Some(median) => {
                let rate =
                    self.throughput.map(|t| describe_rate(t, median)).unwrap_or_default();
                println!("{full:<50} time: {:>12}{rate}", format_duration(median));
            }
            None => println!("{full:<50} (no samples)"),
        }
    }

    /// Ends the group (kept for API compatibility; output is incremental).
    pub fn finish(&mut self) {}
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn describe_rate(t: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64();
    if secs <= 0.0 {
        return String::new();
    }
    match t {
        Throughput::Elements(n) => format!("  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6),
        Throughput::Bytes(n) => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / secs / (1 << 20) as f64)
        }
    }
}

/// Benchmark driver: filters and runs registered benchmarks.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards harness flags such as `--bench`; anything
        // that is not a flag is treated as a substring filter, mirroring
        // criterion's CLI.
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        Self { filters }
    }
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: 10,
            throughput: None,
        };
        group.run(id.into_id(), |b| f(b));
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
